//! Replay pipeline anatomy: how batch size moves fast-replay throughput.
//!
//! The sharded engine amortizes channel synchronization by moving whole
//! record batches from the Postman to each querier shard. This experiment
//! sweeps the batch size (1 = the old record-at-a-time behaviour) over the
//! §4.3 generator workload and reports throughput plus the per-shard
//! saturation counters, showing where the pipeline bottlenecks at each
//! setting: postman stalls mean distribution-bound, deep queues mean
//! send-bound, shallow queues mean reader-bound.

use std::sync::Arc;
use std::time::Instant;

use ldp_bench::{emit, scale, Report};
use ldp_metrics::PipelineTotals;
use ldp_replay::{LiveReplay, ReplayMode};
use ldp_server::auth::AuthEngine;
use ldp_server::live::LiveServer;
use ldp_trace::TraceRecord;
use ldp_wire::{Name, RrType};
use ldp_workload::zones::wildcard_example_zone;
use ldp_zone::ZoneSet;
use serde_json::json;

fn engine() -> Arc<AuthEngine> {
    let mut set = ZoneSet::new();
    set.insert(wildcard_example_zone());
    Arc::new(AuthEngine::with_zones(Arc::new(set)))
}

/// Identical queries from a handful of sources (the §4.3 generator):
/// sticky routing gives each querier long same-source runs, the case the
/// batched send path is built to exploit.
fn generator(n: u64) -> Vec<TraceRecord> {
    let name = Name::parse("www.example.com").unwrap();
    (0..n)
        .map(|i| {
            TraceRecord::udp_query(
                0,
                format!("10.0.0.{}", 1 + i % 5).parse().unwrap(),
                (1024 + i % 60_000) as u16,
                name.clone(),
                RrType::A,
            )
        })
        .collect()
}

#[tokio::main(flavor = "multi_thread")]
async fn main() {
    let scale = scale();
    let server = LiveServer::spawn(engine(), "127.0.0.1:0".parse().unwrap())
        .await
        .expect("spawn live server");

    let n = (60_000.0 * scale) as u64;
    let mut report = Report::new("Replay pipeline: batch size vs fast-replay throughput");
    let section = report.section(
        format!("fast replay of {n} queries per batch-size setting (LDP_SCALE={scale})"),
        &[
            "batch_size",
            "rate_qps",
            "sent",
            "answered",
            "batches",
            "stalls",
            "max_depth",
        ],
    );

    for &batch_size in &[1usize, 32, 256] {
        let replay = LiveReplay {
            mode: ReplayMode::Fast,
            drain: std::time::Duration::from_millis(50),
            batch_size,
            // Raw send capacity: blast mode overruns the server on
            // purpose; retransmitting the overrun would measure the
            // retry ladder, not the pipeline.
            retry: ldp_replay::RetryPolicy::disabled(),
            ..LiveReplay::new(server.addr)
        };
        let t0 = Instant::now();
        let out = replay.run(generator(n)).await.expect("replay runs");
        let secs = t0.elapsed().as_secs_f64();
        let qps = out.sent as f64 / secs;
        let totals = PipelineTotals::from_shards(&out.shards);
        println!("batch {batch_size:>4}: {qps:>10.0} q/s");
        for s in &out.shards {
            println!("  {}", s.row());
        }
        section.row(vec![
            json!(batch_size),
            json!(qps),
            json!(totals.sent),
            json!(totals.answered),
            json!(totals.batches),
            json!(totals.postman_stalls),
            json!(totals.max_queue_depth),
        ]);
    }

    println!("\nexpected shape: throughput rises with batch size until syscalls dominate");
    emit(&report, "replay_pipeline");
}
