//! Figure 15 / §5.2.4: query latency vs client-server RTT, with a 20 s
//! TCP timeout — (a) over all clients, (b) over non-busy clients (<250
//! queries), (c) the per-client query-load CDF of the trace.
//!
//! Paper shapes to check:
//! * UDP latency ≈ 1 RTT, flat;
//! * all-clients TCP median close to UDP (busy clients always reuse) but
//!   with a skewed tail;
//! * non-busy TCP median ≈ 2 RTT (fresh connections), 25th percentile at
//!   1 RTT (reuse still helps);
//! * non-busy TLS median rising from 2 toward 4 RTT with RTT;
//! * the load CDF shows ~1% of clients carrying ~75% of queries.

use ldp_bench::{emit_with, scale, traces, Cdf, Report, RunManifest};
use ldp_replay::simclient::{non_busy_latency_hist, per_client_counts};
use ldp_trace::mutate;
use ldplayer::SimExperiment;
use serde_json::json;

fn main() {
    let scale = scale();
    let mut report = Report::new("Figure 15: query latency vs RTT (20 s TCP timeout)");
    let cfg = traces::b17b_like(scale);

    let rtts = [5u64, 20, 40, 80, 120, 160];
    let all_section_cols = ["workload", "rtt_ms", "p5", "q1", "median", "q3", "p95"];
    let mut all_rows: Vec<Vec<serde_json::Value>> = Vec::new();
    let mut nonbusy_rows: Vec<Vec<serde_json::Value>> = Vec::new();
    let mut load_cdf_rows: Vec<Vec<serde_json::Value>> = Vec::new();
    let mut baseline_hist = None;

    for (label, mutator) in [
        ("original (3% TCP)", None),
        ("all-TCP", Some(mutate::all_tcp(5))),
        ("all-TLS", Some(mutate::all_tls(5))),
    ] {
        for rtt in rtts {
            let mut trace = cfg.generate();
            if let Some(m) = &mutator {
                m.clone().apply_all(&mut trace);
            }
            let result = SimExperiment::root_server(trace)
                .rtt_ms(rtt)
                .tcp_idle_timeout_s(20)
                .grace_s(2)
                .run();
            assert!(
                result.answer_rate() > 0.97,
                "{label} rtt={rtt}: rate {}",
                result.answer_rate()
            );

            // (a) all clients: quantiles from the merged per-shard
            // histogram (µs ticks summarized in ms), not from sorting a
            // pooled sample vector — fixed memory at any trace size.
            if let Some(s) = result.latency_hist.summary(1000.0) {
                println!(
                    "(a) {label:<18} RTT {rtt:>3} ms: median {:7.1} ms (q1 {:6.1}, q3 {:6.1}, p95 {:7.1})",
                    s.median, s.q1, s.q3, s.p95
                );
                all_rows.push(vec![
                    json!(label),
                    json!(rtt),
                    json!(s.p5),
                    json!(s.q1),
                    json!(s.median),
                    json!(s.q3),
                    json!(s.p95),
                ]);
            }
            // (b) non-busy clients. The paper's "<250 queries" cutoff
            // selects 98% of the clients (and 14% of the load) of its
            // 53M-query trace; at harness scale the same *client share*
            // is the faithful cut, so use the 98th percentile of the
            // per-client query counts as the threshold.
            let threshold = {
                let counts = per_client_counts(&result.outcomes);
                let mut v: Vec<u64> = counts.values().copied().collect();
                v.sort_unstable();
                let idx = ((v.len() as f64) * 0.98) as usize;
                v.get(idx.min(v.len().saturating_sub(1)))
                    .copied()
                    .unwrap_or(250)
                    .max(2)
            };
            if let Some(s) = non_busy_latency_hist(&result.outcomes, threshold).summary(1000.0) {
                nonbusy_rows.push(vec![
                    json!(label),
                    json!(rtt),
                    json!(s.p5),
                    json!(s.q1),
                    json!(s.median),
                    json!(s.q3),
                    json!(s.p95),
                ]);
            }
            // (c) per-client load CDF, once (workload-independent).
            if label == "original (3% TCP)" && rtt == rtts[0] {
                baseline_hist = Some(result.latency_hist.clone());
                let counts = per_client_counts(&result.outcomes);
                let loads: Vec<f64> = counts.values().map(|&c| c as f64).collect();
                let cdf = Cdf::new(&loads);
                for (x, f) in cdf.points(30) {
                    load_cdf_rows.push(vec![json!(x), json!(f)]);
                }
                let mut sorted: Vec<f64> = loads.clone();
                sorted.sort_by(|a, b| b.partial_cmp(a).expect("no NaNs"));
                let total: f64 = sorted.iter().sum();
                let top1: f64 = sorted.iter().take((sorted.len() / 100).max(1)).sum();
                let quiet = loads.iter().filter(|&&c| c < 10.0).count() as f64 / loads.len() as f64;
                println!(
                    "(c) top-1% clients carry {:.0}% of load (paper ~75%); {:.0}% of clients send <10 queries (paper ~81%)",
                    top1 / total * 100.0,
                    quiet * 100.0
                );
            }
        }
    }

    let a = report.section("(a) latency over all clients (ms)", &all_section_cols);
    for row in all_rows {
        a.row(row);
    }
    let b = report.section(
        "(b) latency over non-busy clients (<250 queries) (ms)",
        &all_section_cols,
    );
    for row in nonbusy_rows {
        b.row(row);
    }
    let c = report.section(
        "(c) per-client query-load CDF",
        &["queries_per_client", "cdf"],
    );
    for row in load_cdf_rows {
        c.row(row);
    }

    println!("\npaper shapes: UDP flat at 1 RTT; non-busy TCP ≈2 RTT median; TLS 2→4 RTT; heavy-tailed load");
    let mut manifest = RunManifest::new("fig15_latency")
        .seed(cfg.seed)
        .scale(scale);
    if let Some(h) = &baseline_hist {
        // The original-workload run at the smallest RTT, recorded as the
        // full merged per-shard latency histogram.
        manifest = manifest.stage("latency_all_clients", h);
    }
    emit_with(&report, "fig15_latency", &manifest);
}
