//! Extension experiment (paper §7: "currently evaluating replays of
//! recursive DNS traces with multiple levels of the DNS hierarchy"):
//! replay a Rec-17-style departmental trace *through a recursive resolver*
//! that resolves against the emulated hierarchy via the proxy pair, and
//! measure what the paper's framework makes visible — cache hit ratio
//! over time, upstream query amplification, and stub-visible latency for
//! cold vs warm lookups.

use std::net::{IpAddr, SocketAddr};
use std::sync::Arc;

use ldp_bench::{emit, scale, Report, Summary};
use ldp_netsim::{Ctx, Node, NodeEvent, Packet, Payload, Sim, SimDuration, SimTime, TcpConfig};
use ldp_proxy::ProxyNode;
use ldp_server::auth::AuthEngine;
use ldp_server::recursive::{ResolverConfig, ResolverCore};
use ldp_server::resource::ResourceModel;
use ldp_server::sim::{AuthServerNode, RecursiveNode};
use ldp_trace::TraceRecord;
use ldp_wire::{Message, Name, RData, Record};
use ldp_workload::RecConfig;
use ldp_zone::{ViewTable, Zone};
use serde_json::json;

const ROOT_NS: &str = "198.41.0.4";
const TLD_NS: &str = "192.5.6.30";
const META: &str = "10.0.0.3";
const REC: &str = "10.0.0.2";
const STUB: &str = "10.0.0.1";

/// Builds the hierarchy the Rec trace queries: root → example → the ~549
/// zoneNNNN.example SLDs (all SLDs share one nameserver, as hosting
/// providers do — one view serves them all).
fn hierarchy(zones: usize) -> ViewTable {
    let sld_ns: IpAddr = "192.0.2.53".parse().unwrap();
    let mut root = Zone::with_fake_soa(Name::root());
    root.add(Record::new(
        Name::root(),
        518400,
        RData::Ns(Name::parse("a.root-servers.net").unwrap()),
    ))
    .unwrap();
    root.add(Record::new(
        Name::parse("a.root-servers.net").unwrap(),
        518400,
        RData::A(ROOT_NS.parse().unwrap()),
    ))
    .unwrap();
    root.add(Record::new(
        Name::parse("example").unwrap(),
        172800,
        RData::Ns(Name::parse("ns.example").unwrap()),
    ))
    .unwrap();
    root.add(Record::new(
        Name::parse("ns.example").unwrap(),
        172800,
        RData::A(TLD_NS.parse().unwrap()),
    ))
    .unwrap();

    let mut tld = Zone::with_fake_soa(Name::parse("example").unwrap());
    let mut pairs: Vec<(IpAddr, Zone)> = Vec::new();
    for i in 0..zones {
        let origin = Name::parse(&format!("zone{i:04}.example")).unwrap();
        tld.add(Record::new(
            origin.clone(),
            86400,
            RData::Ns(Name::parse("ns.hosting.example").unwrap()),
        ))
        .unwrap();
        tld.add(Record::new(
            Name::parse("ns.hosting.example").unwrap(),
            86400,
            RData::A("192.0.2.53".parse().unwrap()),
        ))
        .unwrap();
        let mut z = Zone::with_fake_soa(origin.clone());
        for host in ["www", "mail", "api", "cdn"] {
            z.add(Record::new(
                origin.prepend(host.as_bytes()).unwrap(),
                300,
                RData::A(
                    format!("203.0.{}.{}", i / 250, 1 + i % 250)
                        .parse()
                        .unwrap(),
                ),
            ))
            .unwrap();
        }
        pairs.push((sld_ns, z));
    }
    pairs.push((ROOT_NS.parse().unwrap(), root));
    pairs.push((TLD_NS.parse().unwrap(), tld));
    ViewTable::from_nameserver_map(pairs)
}

/// Stub node replaying the Rec trace at trace timing and recording
/// latencies per query.
struct StubReplayer {
    addr: IpAddr,
    resolver: SocketAddr,
    records: Vec<TraceRecord>,
    pending: std::collections::HashMap<u16, (usize, SimTime)>,
    outcomes: Vec<(u64, Option<f64>)>, // (trace µs, latency ms)
    next_id: u16,
}

impl Node for StubReplayer {
    fn on_start(&mut self, ctx: &mut Ctx) {
        for (i, rec) in self.records.iter().enumerate() {
            ctx.set_timer(SimTime::from_micros(rec.time_us) - SimTime::ZERO, i as u64);
        }
    }
    fn on_event(&mut self, ctx: &mut Ctx, event: NodeEvent) {
        match event {
            NodeEvent::Timer { token } => {
                let idx = token as usize;
                self.next_id = self.next_id.wrapping_add(1);
                let mut msg = self.records[idx].message.clone();
                msg.header.id = self.next_id;
                let outcome = self.outcomes.len();
                self.outcomes.push((self.records[idx].time_us, None));
                self.pending.insert(self.next_id, (outcome, ctx.now()));
                if let Ok(bytes) = msg.to_bytes() {
                    ctx.send(Packet::udp(
                        SocketAddr::new(self.addr, 5353),
                        self.resolver,
                        bytes,
                    ));
                }
            }
            NodeEvent::Packet(p) => {
                if let Payload::Udp(data) = &p.payload {
                    if let Ok(msg) = Message::from_bytes(data) {
                        if let Some((idx, sent)) = self.pending.remove(&msg.header.id) {
                            self.outcomes[idx].1 = Some((ctx.now() - sent).as_secs_f64() * 1000.0);
                        }
                    }
                }
            }
        }
    }
}

fn main() {
    let scale = scale();
    let cfg = RecConfig {
        duration_s: 600.0 * scale.clamp(0.2, 2.0),
        ..RecConfig::default()
    };
    let trace = cfg.generate();
    let n_queries = trace.len();

    let mut sim = Sim::new();
    let stub = sim.add_node(Box::new(StubReplayer {
        addr: STUB.parse().unwrap(),
        resolver: format!("{REC}:53").parse().unwrap(),
        records: trace,
        pending: Default::default(),
        outcomes: Vec::new(),
        next_id: 0,
    }));
    let rec = sim.add_node(Box::new(RecursiveNode::new(
        REC.parse().unwrap(),
        ResolverCore::new(vec![ROOT_NS.parse().unwrap()], ResolverConfig::default()),
    )));
    let proxy = sim.add_node(Box::new(ProxyNode::new(
        META.parse().unwrap(),
        REC.parse().unwrap(),
    )));
    let meta = sim.add_node(Box::new(AuthServerNode::new(
        META.parse().unwrap(),
        Arc::new(AuthEngine::with_views(hierarchy(549))),
        TcpConfig::default(),
        ResourceModel::default(),
    )));
    sim.bind(STUB.parse().unwrap(), stub);
    sim.bind(REC.parse().unwrap(), rec);
    sim.bind(META.parse().unwrap(), meta);
    for ns in [ROOT_NS, TLD_NS, "192.0.2.53"] {
        sim.bind(ns.parse().unwrap(), proxy);
    }
    // Stub↔recursive is a campus LAN; recursive↔authoritatives are WAN.
    sim.set_default_delay(SimDuration::from_millis(15));

    sim.run_until(SimTime::from_secs(cfg.duration_s as u64 + 10));

    let stub_ref: &StubReplayer = sim.node_as(stub).unwrap();
    let rec_ref: &RecursiveNode = sim.node_as(rec).unwrap();
    let meta_ref: &AuthServerNode = sim.node_as(meta).unwrap();

    let answered = stub_ref
        .outcomes
        .iter()
        .filter(|(_, l)| l.is_some())
        .count();
    let amplification = rec_ref.core.upstream_queries as f64 / n_queries as f64;
    let hit_rate = rec_ref.core.cache.hits as f64
        / (rec_ref.core.cache.hits + rec_ref.core.cache.misses).max(1) as f64;

    let mut report =
        Report::new("Extension: recursive trace replay through the emulated hierarchy");
    let summary = report.section(
        format!("Rec-17-like trace, 549 zones, one meta server (LDP_SCALE={scale})"),
        &["metric", "value"],
    );
    summary.row(vec![json!("stub queries"), json!(n_queries)]);
    summary.row(vec![json!("answered"), json!(answered)]);
    summary.row(vec![
        json!("upstream (iterative) queries"),
        json!(rec_ref.core.upstream_queries),
    ]);
    summary.row(vec![
        json!("amplification (upstream/stub)"),
        json!(amplification),
    ]);
    summary.row(vec![json!("cache hit rate"), json!(hit_rate)]);
    summary.row(vec![
        json!("meta-server queries served"),
        json!(meta_ref.usage.udp_queries),
    ]);

    // Cold vs warm latency: split by first-vs-later occurrence per qname
    // cache state using latency clusters (cold = multi-hop).
    let lat: Vec<f64> = stub_ref.outcomes.iter().filter_map(|(_, l)| *l).collect();
    if let Some(s) = Summary::compute(&lat) {
        summary.row(vec![json!("latency median (ms)"), json!(s.median)]);
        summary.row(vec![json!("latency q3 (ms)"), json!(s.q3)]);
        summary.row(vec![json!("latency p95 (ms)"), json!(s.p95)]);
        println!(
            "{n_queries} stub queries, {answered} answered; amplification {amplification:.2}×; cache hit rate {:.1}%",
            hit_rate * 100.0
        );
        println!(
            "latency: median {:.0} ms, q3 {:.0} ms, p95 {:.0} ms",
            s.median, s.q3, s.p95
        );
    }

    // First-queries walk three levels (3 × WAN RTT + LAN RTT); repeats are
    // one LAN RTT. Both modes must be visible.
    let warm = lat.iter().filter(|&&l| l < 45.0).count();
    let cold = lat.len() - warm;
    summary.row(vec![json!("warm (≈1 LAN RTT) answers"), json!(warm)]);
    summary.row(vec![json!("cold (hierarchy walk) answers"), json!(cold)]);
    println!("warm {warm} vs cold {cold} — cache effect of §2.4's worked example");
    emit(&report, "ext_recursive_replay");
}
