//! Extension experiment (paper §5, "other potential applications include
//! the study of server hardware and software under denial-of-service
//! attack"): sweep offered load past the server's capacity and measure
//! goodput, answer rate, and resource state.
//!
//! The attack mix is connection churn over TCP (every burst of queries
//! from a fresh source pays a handshake and parks connection state). The
//! server's connection table is capped the way real deployments are
//! (file descriptors / backlog); past the knee, SYNs get RST and the
//! answer rate collapses while memory pins at the cap — the classic
//! state-exhaustion DoS signature. Run with increasing `LDP_SCALE` to
//! push the sweep higher.

use ldp_bench::{emit, scale, Report};
use ldp_trace::mutate;
use ldp_workload::BRootConfig;
use ldplayer::SimExperiment;
use serde_json::json;

fn main() {
    let scale = scale();
    let mut report = Report::new("Extension: root server under query-flood load");
    let section = report.section(
        format!("offered load sweep, all-TCP attack mix (LDP_SCALE={scale})"),
        &[
            "offered_qps",
            "answer_rate",
            "cpu_percent_at_paper_rate",
            "established",
            "refused_syns",
            "memory_gb",
        ],
    );
    // The victim's connection table caps at 2k connections (scaled-down
    // fd limit).
    let conn_cap = 2_000usize;

    // Attack traffic: short bursts from many spoofed-looking sources over
    // TCP (each fresh source costs a handshake — the expensive path).
    for mult in [1u32, 2, 4, 8, 16, 32] {
        let rate = 150.0 * scale * mult as f64;
        let mut trace = BRootConfig {
            duration_s: 30.0,
            mean_rate_qps: rate,
            clients: (rate * 5.0) as usize, // source churn: DoS-like
            zipf_alpha: 0.5,                // flat: no reuse-friendly heavy tail
            seed: 66,
            ..BRootConfig::default()
        }
        .generate();
        mutate::all_tcp(3).apply_all(&mut trace);
        let result = SimExperiment::root_server(trace)
            .rtt_ms(10)
            .tcp_idle_timeout_s(20)
            .server_max_connections(conn_cap)
            .queriers(8)
            .run();
        let cpu = result.steady_state(10.0, |s| s.cpu_percent).unwrap_or(0.0);
        let actual_rate = result.outcomes.len() as f64 / 30.0;
        let normalized = cpu * 39_000.0 / actual_rate.max(1.0);
        println!(
            "offered {rate:>8.0} q/s: answered {:5.1}%  cpu@paper-rate {normalized:6.2}%  established {:>7}  refused {:>8}  memory {:.2} GB",
            result.answer_rate() * 100.0,
            result.final_tcp.established,
            result.final_tcp.refused,
            result.final_memory_gb()
        );
        section.row(vec![
            json!(rate),
            json!(result.answer_rate()),
            json!(normalized),
            json!(result.final_tcp.established),
            json!(result.final_tcp.refused),
            json!(result.final_memory_gb()),
        ]);
    }

    println!("\nexpected shape: perfect service until the connection table fills, then refused SYNs and answer-rate collapse with memory pinned at the cap");
    emit(&report, "ext_dos_load");
}
