//! Ablation (paper §5.2.4): the paper traced its unexpected multi-RTT
//! latency tail to server-side segment coalescing ("Resembling may cause
//! the large delay… Another optimization is to disable the Nagle algorithm
//! on the server"). This binary replays the same all-TCP trace with the
//! server's Nagle-style write coalescing off vs on and shows the tail
//! moving, which is the causal claim the paper could only conjecture.

use ldp_bench::{emit, scale, traces, Report, Summary};
use ldp_trace::mutate;
use ldplayer::SimExperiment;
use serde_json::json;

fn main() {
    let scale = scale();
    let mut report = Report::new("Ablation: server Nagle coalescing vs latency tail (§5.2.4)");
    let section = report.section(
        format!("all-TCP replay, 40 ms RTT, 20 s timeout (LDP_SCALE={scale})"),
        &["server_nagle", "p5", "q1", "median", "q3", "p95", "max"],
    );

    let cfg = traces::b17b_like(scale.min(0.5));
    for (label, nagle_ms) in [("off (TCP_NODELAY)", 0u64), ("on (40 ms window)", 40)] {
        let mut trace = cfg.generate();
        mutate::all_tcp(5).apply_all(&mut trace);
        let result = SimExperiment::root_server(trace)
            .rtt_ms(40)
            .tcp_idle_timeout_s(20)
            .server_nagle_ms(nagle_ms)
            .run();
        assert!(result.answer_rate() > 0.97, "rate {}", result.answer_rate());
        let s = Summary::compute(&result.latencies_ms()).expect("latencies");
        println!(
            "nagle {label:<18} median {:6.1} ms  q3 {:6.1}  p95 {:6.1}  max {:7.1}",
            s.median, s.q3, s.p95, s.max
        );
        section.row(vec![
            json!(label),
            json!(s.p5),
            json!(s.q1),
            json!(s.median),
            json!(s.q3),
            json!(s.p95),
            json!(s.max),
        ]);
    }

    println!("\nexpected: coalescing shifts the upper percentiles by the coalescing window");
    emit(&report, "ablation_nagle");
}
