//! Figure 6: query timing difference between replayed and original traces.
//!
//! Replays the B-Root-like trace and the syn-0…4 fixed-interval traces over
//! UDP against a live loopback server, in real time, and reports the
//! distribution of per-query send-time error (actual − target). The paper
//! reports quartiles within ±2.5 ms (±8 ms at the 0.1 s inter-arrival
//! pathology) and extremes within ±17 ms; the first 20 s of each replay
//! are discarded as startup transient (§4.2 does the same).

use std::sync::Arc;

use ldp_bench::{emit_with, scale, traces, LogHistogram, Report, RunManifest, Summary};
use ldp_replay::{LiveReplay, ReplayMode};
use ldp_server::auth::AuthEngine;
use ldp_server::live::LiveServer;
use ldp_trace::TraceRecord;
use ldp_workload::zones::{synthetic_root_zone, wildcard_example_zone};
use ldp_workload::SyntheticConfig;
use ldp_zone::ZoneSet;
use serde_json::json;

fn engine() -> Arc<AuthEngine> {
    let mut set = ZoneSet::new();
    set.insert(synthetic_root_zone(50));
    set.insert(wildcard_example_zone());
    Arc::new(AuthEngine::with_zones(Arc::new(set)))
}

/// Drops the startup transient (first `skip_us` of trace time).
fn errors_after_warmup(outcomes: &[ldp_replay::ReplayOutcome], skip_us: u64) -> Vec<f64> {
    outcomes
        .iter()
        .filter(|o| o.trace_offset_us >= skip_us)
        // Error is measured against the *scaled* deadline (target), so the
        // statistic stays meaningful when replaying at speed ≠ 1.0.
        .map(|o| (o.sent_offset_us as f64 - o.target_offset_us as f64) / 1000.0)
        .collect()
}

#[tokio::main(flavor = "multi_thread")]
async fn main() {
    let scale = scale();
    let server = LiveServer::spawn(engine(), "127.0.0.1:0".parse().unwrap())
        .await
        .expect("spawn live server");

    let mut report = Report::new("Figure 6: query timing error (ms) in replay");
    let section = report.section(
        format!("per-trace send-time error, warmup removed (LDP_SCALE={scale})"),
        &[
            "trace", "n", "min", "p5", "q1", "median", "q3", "p95", "max",
        ],
    );

    // Keep live replays short: error statistics converge quickly.
    let secs = (6.0 * scale).clamp(4.0, 30.0);
    let mut cases: Vec<(String, Vec<TraceRecord>)> = Vec::new();
    {
        let mut cfg = traces::b16_like(scale.min(1.0));
        cfg.duration_s = secs;
        cfg.mean_rate_qps = cfg.mean_rate_qps.min(3000.0);
        cases.push(("B-Root*".into(), cfg.generate()));
    }
    for level in 0..=4u32 {
        let mut cfg = SyntheticConfig::syn(level);
        cfg.duration_s = secs as u64;
        cases.push((
            format!("syn-{level} ({}s gap)", cfg.interarrival_us as f64 / 1e6),
            cfg.generate(),
        ));
    }

    // Lateness (actual − target, early sends clamped to zero) pooled
    // across all traces, histogram form for the run manifest. The signed
    // table rows above stay the figure's statistic; the histogram is the
    // fixed-memory artifact cross-commit diffs read.
    let mut lateness = LogHistogram::new();
    for (label, trace) in cases {
        if trace.is_empty() {
            continue;
        }
        let replay = LiveReplay {
            mode: ReplayMode::Timed { speed: 1.0 },
            ..LiveReplay::new(server.addr)
        };
        let report_out = replay.run(trace).await.expect("replay runs");
        let warmup_us = (secs as u64 * 1_000_000) / 4;
        for o in &report_out.outcomes {
            if o.trace_offset_us >= warmup_us {
                lateness.record(o.sent_offset_us.saturating_sub(o.target_offset_us));
            }
        }
        let errors = errors_after_warmup(&report_out.outcomes, warmup_us);
        let Some(s) = Summary::compute(&errors) else {
            continue;
        };
        println!("{}", s.row(&label, "ms"));
        section.row(vec![
            json!(label),
            json!(s.count),
            json!(s.min),
            json!(s.p5),
            json!(s.q1),
            json!(s.median),
            json!(s.q3),
            json!(s.p95),
            json!(s.max),
        ]);
    }

    println!(
        "\npaper shape: quartiles within ±2.5 ms (±8 ms at 0.1 s gaps); extremes within ±17 ms"
    );
    let manifest = RunManifest::new("fig06_timing_error")
        .scale(scale)
        .stage("send_lateness_clamped", &lateness);
    emit_with(&report, "fig06_timing_error", &manifest);
}
