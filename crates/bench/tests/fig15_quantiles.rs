//! Regression test for the Figure 15 quantile path: the quartiles read
//! from the merged per-shard [`LogHistogram`] must match the exact
//! sorted-sample quantiles (type-1: rank `⌈q·n⌉`) within one bucket
//! width on a ~10k-query simulated trace.
//!
//! This pins the fix for the old pipeline, which computed quartiles over
//! an *unsorted* concatenation of per-shard latency vectors.

use ldp_bench::{traces, LogHistogram};
use ldplayer::SimExperiment;

#[test]
fn hist_quartiles_match_exact_sorted_quantiles() {
    // ~800 q/s × 12 s ≈ 10k queries through the simulated root server.
    let trace = traces::b16_like(0.4).generate();
    assert!(
        trace.len() >= 8_000,
        "trace too small to exercise the tail: {}",
        trace.len()
    );
    let result = SimExperiment::root_server(trace)
        .rtt_ms(20)
        .grace_s(2)
        .run();

    let mut exact: Vec<u64> = result
        .outcomes
        .iter()
        .filter_map(|o| o.latency_us())
        .collect();
    exact.sort_unstable();
    assert!(!exact.is_empty(), "no answered queries");
    assert_eq!(
        result.latency_hist.count(),
        exact.len() as u64,
        "histogram must hold exactly the answered-query latencies"
    );
    assert_eq!(result.latency_hist.min(), exact.first().copied());
    assert_eq!(result.latency_hist.max(), exact.last().copied());

    let n = exact.len();
    for q in [0.05, 0.25, 0.50, 0.75, 0.95] {
        let rank = ((q * n as f64).ceil() as usize).clamp(1, n);
        let exact_val = exact[rank - 1];
        let (lo, hi) = result.latency_hist.quantile_bounds(q).expect("non-empty");
        assert!(
            lo <= exact_val && exact_val <= hi,
            "q={q}: exact order statistic {exact_val} outside reported bucket [{lo}, {hi}]"
        );
        let reported = result.latency_hist.quantile(q).expect("non-empty");
        let width = LogHistogram::bucket_width(exact_val);
        assert!(
            reported.abs_diff(exact_val) < width,
            "q={q}: reported {reported} vs exact {exact_val}, bucket width {width}"
        );
    }
}
