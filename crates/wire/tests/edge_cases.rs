//! Adversarial wire-format corpus: hand-crafted malformed and boundary
//! messages that a replay server will see from the wild (the paper's
//! testbed replays captured traffic verbatim, malformations included).

use ldp_wire::{Edns, Message, Name, RData, Record, RrType, WireWriter};

/// Builds a raw message: header with the given counts, then `body`.
fn raw(qd: u16, an: u16, ns: u16, ar: u16, body: &[u8]) -> Vec<u8> {
    let mut m = Vec::new();
    m.extend_from_slice(&0x1234u16.to_be_bytes());
    m.extend_from_slice(&0u16.to_be_bytes());
    for c in [qd, an, ns, ar] {
        m.extend_from_slice(&c.to_be_bytes());
    }
    m.extend_from_slice(body);
    m
}

#[test]
fn counts_exceeding_body_are_truncation_errors() {
    // Claims one question but provides none.
    assert!(Message::from_bytes(&raw(1, 0, 0, 0, &[])).is_err());
    // Claims 65535 answers with an empty body.
    assert!(Message::from_bytes(&raw(0, u16::MAX, 0, 0, &[])).is_err());
}

#[test]
fn pointer_into_header_rejected() {
    // A name that is a pointer to offset 0 (the ID field — gibberish but
    // backwards, so it parses the bytes there as labels). Offset 0 holds
    // 0x12 which reads as an 18-byte label extending past... it must
    // error, never hang or panic.
    let mut body = vec![0xC0, 0x00];
    body.extend_from_slice(&RrType::A.code().to_be_bytes());
    body.extend_from_slice(&1u16.to_be_bytes());
    let res = Message::from_bytes(&raw(1, 0, 0, 0, &body));
    assert!(res.is_err());
}

#[test]
fn self_referencing_pointer_chain_rejected() {
    // Two pointers that point at each other (offsets 12 and 14).
    let body = vec![0xC0, 14, 0xC0, 12];
    assert!(Message::from_bytes(&raw(1, 0, 0, 0, &body)).is_err());
}

#[test]
fn maximum_label_and_name_sizes() {
    let label63 = "a".repeat(63);
    // 3 × 63 + 61 + dots = 253 text chars ⇒ 255 wire bytes: the maximum.
    let name = Name::parse(&format!("{label63}.{label63}.{label63}.{}", "a".repeat(61))).unwrap();
    assert_eq!(name.wire_len(), 255);
    let msg = Message::query(1, name.clone(), RrType::A);
    let bytes = msg.to_bytes().unwrap();
    let back = Message::from_bytes(&bytes).unwrap();
    assert_eq!(back.question().unwrap().qname, name);
    // One more byte is too many.
    assert!(Name::parse(&format!("{label63}.{label63}.{label63}.{}", "a".repeat(62))).is_err());
}

#[test]
fn case_preserved_through_wire_comparison_insensitive() {
    // Wire decoding lowercases (we normalize); two casings must decode to
    // equal names and hit the same compression slots.
    let mut w = WireWriter::new();
    w.put_name(&Name::parse("WWW.Example.COM").unwrap())
        .unwrap();
    let upper = w.len();
    w.put_name(&Name::parse("www.example.com").unwrap())
        .unwrap();
    // Second name compresses into a single pointer against the first.
    assert_eq!(w.len(), upper + 2);
}

#[test]
fn zero_ttl_and_max_ttl_roundtrip() {
    for ttl in [0u32, u32::MAX] {
        let rec = Record::new(
            Name::parse("t.example").unwrap(),
            ttl,
            RData::A("192.0.2.1".parse().unwrap()),
        );
        let mut w = WireWriter::new();
        rec.encode(&mut w).unwrap();
        let bytes = w.into_bytes();
        let mut r = ldp_wire::WireReader::new(&bytes);
        assert_eq!(Record::decode(&mut r).unwrap().ttl, ttl);
    }
}

#[test]
fn multiple_opt_records_last_wins_no_panic() {
    // Two OPT records is a protocol violation (RFC 6891 §6.1.1); the
    // decoder keeps the last and must not crash.
    let mut q = Message::query(9, Name::parse("x.test").unwrap(), RrType::A);
    q.edns = Some(Edns::with_do());
    let mut bytes = q.to_bytes().unwrap();
    // Append a second OPT by re-encoding the EDNS block manually.
    let mut w = WireWriter::new();
    Edns::default().encode(&mut w).unwrap();
    bytes.extend_from_slice(w.as_slice());
    // Patch ARCOUNT from 1 to 2.
    bytes[11] = 2;
    let dec = Message::from_bytes(&bytes).unwrap();
    assert!(dec.edns.is_some());
}

#[test]
fn response_larger_than_question_roundtrip_at_64k_boundary() {
    // A message just under the 64 KiB cap must encode; one over must not.
    let mut m = Message::query(1, Name::parse("big.test").unwrap(), RrType::Txt);
    let mut resp = Message::response_for(&m);
    // ~64 KB of TXT records (each ~265 B united).
    for i in 0..240 {
        resp.answers.push(Record::new(
            Name::parse(&format!("n{i}.big.test")).unwrap(),
            60,
            RData::Txt(vec![vec![b'x'; 255]]),
        ));
    }
    let encoded = resp.to_bytes().unwrap();
    assert!(encoded.len() <= u16::MAX as usize);
    // Push it over the top.
    for i in 0..40 {
        resp.answers.push(Record::new(
            Name::parse(&format!("m{i}.big.test")).unwrap(),
            60,
            RData::Txt(vec![vec![b'y'; 255]]),
        ));
    }
    assert!(
        resp.to_bytes().is_err(),
        "oversized message must be rejected"
    );
    m.answers.clear();
}

#[test]
fn empty_message_roundtrip() {
    let m = Message::default();
    let bytes = m.to_bytes().unwrap();
    assert_eq!(bytes.len(), 12);
    assert_eq!(Message::from_bytes(&bytes).unwrap(), m);
}

#[test]
fn trailing_garbage_after_sections_is_tolerated() {
    // Captured UDP payloads sometimes carry padding; decoding stops at the
    // counted records and must not error on trailing bytes.
    let q = Message::query(5, Name::parse("pad.test").unwrap(), RrType::A);
    let mut bytes = q.to_bytes().unwrap();
    bytes.extend_from_slice(&[0xAA; 16]);
    let dec = Message::from_bytes(&bytes).unwrap();
    assert_eq!(dec.header.id, 5);
}
