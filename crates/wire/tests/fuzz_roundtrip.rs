//! Deterministic fuzz-style round-trip tests for the wire codec.
//!
//! Three attack surfaces: random byte mutations of a realistic message
//! (decoder robustness + re-encode agreement), randomly generated
//! structured messages (encode→decode losslessness), and
//! compression-heavy messages including ones crossing the 0x4000 pointer
//! offset limit. The Z-bit regression (reserved header bit dropped on
//! decode) was found by exactly this harness.

use ldp_wire::edns::{Edns, EdnsOption};
use ldp_wire::message::Message;
use ldp_wire::name::Name;
use ldp_wire::rdata::{RData, SoaData};
use ldp_wire::record::Record;
use ldp_wire::rr::RrType;

/// splitmix64: tiny, deterministic, identical across build profiles.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

fn rand_name(r: &mut Rng) -> Name {
    loop {
        let n = r.below(5) as usize;
        let labels: Vec<Vec<u8>> = (0..n)
            .map(|_| {
                let len = 1 + r.below(12) as usize;
                (0..len).map(|_| r.next() as u8).collect()
            })
            .collect();
        if let Ok(name) = Name::from_labels(labels) {
            return name;
        }
    }
}

fn rand_rdata(r: &mut Rng) -> RData {
    match r.below(13) {
        0 => RData::A(std::net::Ipv4Addr::from(r.next() as u32)),
        1 => RData::Aaaa(std::net::Ipv6Addr::from(
            ((r.next() as u128) << 64) | r.next() as u128,
        )),
        2 => RData::Ns(rand_name(r)),
        3 => RData::Cname(rand_name(r)),
        4 => RData::Ptr(rand_name(r)),
        5 => RData::Soa(SoaData {
            mname: rand_name(r),
            rname: rand_name(r),
            serial: r.next() as u32,
            refresh: r.next() as u32,
            retry: r.next() as u32,
            expire: r.next() as u32,
            minimum: r.next() as u32,
        }),
        6 => RData::Mx {
            preference: r.next() as u16,
            exchange: rand_name(r),
        },
        7 => RData::Txt(
            (0..1 + r.below(3))
                .map(|_| (0..r.below(40)).map(|_| r.next() as u8).collect())
                .collect(),
        ),
        8 => RData::Srv {
            priority: r.next() as u16,
            weight: r.next() as u16,
            port: r.next() as u16,
            target: rand_name(r),
        },
        9 => RData::Dnskey {
            flags: r.next() as u16,
            protocol: 3,
            algorithm: 8,
            public_key: (0..r.below(64)).map(|_| r.next() as u8).collect(),
        },
        10 => RData::Rrsig {
            type_covered: RrType::from_code(r.next() as u16),
            algorithm: 8,
            labels: r.next() as u8,
            original_ttl: r.next() as u32,
            expiration: r.next() as u32,
            inception: r.next() as u32,
            key_tag: r.next() as u16,
            signer: rand_name(r),
            signature: (0..r.below(64)).map(|_| r.next() as u8).collect(),
        },
        11 => RData::Ds {
            key_tag: r.next() as u16,
            algorithm: 8,
            digest_type: 2,
            digest: (0..r.below(40)).map(|_| r.next() as u8).collect(),
        },
        _ => RData::Nsec {
            next: rand_name(r),
            type_bitmaps: (0..r.below(16)).map(|_| r.next() as u8).collect(),
        },
    }
}

/// A realistic response touching compression, EDNS, and several sections.
fn base_message() -> Vec<u8> {
    let mut m = Message::query(0x1234, Name::parse("www.example.com").unwrap(), RrType::A);
    m.answers.push(Record::new(
        Name::parse("www.example.com").unwrap(),
        300,
        RData::A("192.0.2.1".parse().unwrap()),
    ));
    m.authorities.push(Record::new(
        Name::parse("example.com").unwrap(),
        300,
        RData::Soa(SoaData {
            mname: Name::parse("ns1.example.com").unwrap(),
            rname: Name::parse("host.example.com").unwrap(),
            serial: 1,
            refresh: 2,
            retry: 3,
            expire: 4,
            minimum: 5,
        }),
    ));
    m.additionals.push(Record::new(
        Name::parse("ns1.example.com").unwrap(),
        60,
        RData::Txt(vec![b"hello world".to_vec()]),
    ));
    m.edns = Some(Edns::default());
    m.to_bytes().unwrap()
}

#[test]
fn roundtrip_under_byte_mutations() {
    let base = base_message();
    let mut rng = Rng(0xDEADBEEF);
    for _ in 0..50_000 {
        let mut bytes = base.clone();
        for _ in 0..1 + (rng.next() % 4) as usize {
            let i = (rng.next() as usize) % bytes.len();
            bytes[i] = rng.next() as u8;
        }
        // Decoding must never panic; anything that decodes must re-encode
        // to something that decodes back to the same message.
        if let Ok(m) = Message::from_bytes(&bytes) {
            if let Ok(re) = m.to_bytes() {
                let m2 = Message::from_bytes(&re).expect("re-decode of own encoding");
                assert_eq!(m, m2);
            }
        }
        // Truncation sweep on a sample of cases.
        if rng.next().is_multiple_of(200) {
            for cut in 0..bytes.len() {
                let _ = Message::from_bytes(&bytes[..cut]);
            }
        }
    }
}

#[test]
fn roundtrip_of_random_structured_messages() {
    let mut r = Rng(42);
    for case in 0..10_000u32 {
        let mut m = Message::query(
            r.next() as u16,
            rand_name(&mut r),
            RrType::from_code(r.next() as u16),
        );
        for _ in 0..r.below(4) {
            m.answers.push(Record::new(
                rand_name(&mut r),
                r.next() as u32,
                rand_rdata(&mut r),
            ));
        }
        for _ in 0..r.below(3) {
            m.authorities.push(Record::new(
                rand_name(&mut r),
                r.next() as u32,
                rand_rdata(&mut r),
            ));
        }
        for _ in 0..r.below(3) {
            m.additionals.push(Record::new(
                rand_name(&mut r),
                r.next() as u32,
                rand_rdata(&mut r),
            ));
        }
        if r.below(2) == 0 {
            m.edns = Some(Edns {
                udp_payload_size: r.next() as u16,
                extended_rcode: r.next() as u8,
                version: 0,
                dnssec_ok: r.below(2) == 0,
                z_flags: (r.next() as u16) & 0x7FFF,
                options: (0..r.below(3))
                    .map(|_| EdnsOption {
                        code: r.next() as u16,
                        data: (0..r.below(20)).map(|_| r.next() as u8).collect(),
                    })
                    .collect(),
            });
        }
        let bytes = m
            .to_bytes()
            .unwrap_or_else(|e| panic!("case {case}: encode: {e}"));
        let m2 = Message::from_bytes(&bytes).unwrap_or_else(|e| panic!("case {case}: decode: {e}"));
        assert_eq!(m, m2, "case {case}");

        // Name text form must round-trip too (escapes for dots,
        // backslashes, and non-printable bytes).
        let n = rand_name(&mut r);
        let reparsed = Name::parse(&n.to_string())
            .unwrap_or_else(|e| panic!("case {case}: reparse of {n}: {e}"));
        assert_eq!(n, reparsed, "case {case}: name text roundtrip");
    }
}

#[test]
fn roundtrip_compression_heavy() {
    let mut names = Vec::new();
    for base in [
        "example.com",
        "sub.example.com",
        "a.b.sub.example.com",
        "other.net",
        "deep.other.net",
    ] {
        names.push(Name::parse(base).unwrap());
    }
    for i in 0..20 {
        names.push(Name::parse(&format!("h{i}.example.com")).unwrap());
        names.push(Name::parse(&format!("x{i}.y{i}.other.net")).unwrap());
    }
    let mut r = Rng(7);
    for case in 0..2_000u32 {
        let pick = |r: &mut Rng| names[r.below(names.len() as u64) as usize].clone();
        let mut m = Message::query(r.next() as u16, pick(&mut r), RrType::A);
        for _ in 0..2 + r.below(30) {
            let rd = match r.below(4) {
                0 => RData::Ns(pick(&mut r)),
                1 => RData::Cname(pick(&mut r)),
                2 => RData::Mx {
                    preference: r.next() as u16,
                    exchange: pick(&mut r),
                },
                _ => RData::A(std::net::Ipv4Addr::from(r.next() as u32)),
            };
            m.answers
                .push(Record::new(pick(&mut r), r.next() as u32, rd));
        }
        let bytes = m
            .to_bytes()
            .unwrap_or_else(|e| panic!("case {case}: encode: {e}"));
        let m2 = Message::from_bytes(&bytes).unwrap_or_else(|e| panic!("case {case}: decode: {e}"));
        assert_eq!(m, m2, "case {case}");
    }
}

#[test]
fn roundtrip_across_pointer_offset_limit() {
    // Suffixes first seen past offset 0x4000 cannot be compression targets;
    // the writer must fall back to verbatim labels and still round-trip.
    let mut m = Message::query(1, Name::parse("start.example.com").unwrap(), RrType::A);
    for i in 0..80 {
        m.answers.push(Record::new(
            Name::parse(&format!("pad{i}.example.com")).unwrap(),
            60,
            RData::Txt(vec![vec![b'x'; 250]]),
        ));
    }
    for i in 0..40 {
        m.answers.push(Record::new(
            Name::parse(&format!("n{i}.late.zone.test")).unwrap(),
            60,
            RData::Ns(Name::parse(&format!("ns{i}.late.zone.test")).unwrap()),
        ));
    }
    let bytes = m.to_bytes().expect("encode");
    assert!(bytes.len() > 0x4000, "must cross the pointer boundary");
    let m2 = Message::from_bytes(&bytes).expect("decode");
    assert_eq!(m, m2);
}
