//! Property tests: arbitrary messages survive encode → decode unchanged,
//! with and without name compression.

use ldp_wire::{
    Edns, Header, Message, Name, Opcode, Question, RData, Rcode, Record, RrClass, RrType, SoaData,
};
use proptest::prelude::*;

fn arb_label() -> impl Strategy<Value = Vec<u8>> {
    proptest::collection::vec(
        prop_oneof![Just(b'a'), Just(b'b'), Just(b'z'), Just(b'0'), Just(b'-')],
        1..12,
    )
}

fn arb_name() -> impl Strategy<Value = Name> {
    proptest::collection::vec(arb_label(), 0..5)
        .prop_map(|labels| Name::from_labels(labels).unwrap())
}

fn arb_rtype() -> impl Strategy<Value = RrType> {
    prop_oneof![
        Just(RrType::A),
        Just(RrType::Ns),
        Just(RrType::Cname),
        Just(RrType::Soa),
        Just(RrType::Mx),
        Just(RrType::Txt),
        Just(RrType::Aaaa),
        Just(RrType::Srv),
        Just(RrType::Ds),
        Just(RrType::Rrsig),
        Just(RrType::Nsec),
        Just(RrType::Dnskey),
        (256u16..4000).prop_map(RrType::Unknown),
    ]
}

fn arb_rdata() -> impl Strategy<Value = RData> {
    prop_oneof![
        any::<[u8; 4]>().prop_map(|o| RData::A(o.into())),
        any::<[u8; 16]>().prop_map(|o| RData::Aaaa(o.into())),
        arb_name().prop_map(RData::Ns),
        arb_name().prop_map(RData::Cname),
        arb_name().prop_map(RData::Ptr),
        (
            arb_name(),
            arb_name(),
            any::<u32>(),
            any::<u32>(),
            any::<u32>(),
            any::<u32>(),
            any::<u32>()
        )
            .prop_map(
                |(mname, rname, serial, refresh, retry, expire, minimum)| RData::Soa(SoaData {
                    mname,
                    rname,
                    serial,
                    refresh,
                    retry,
                    expire,
                    minimum
                })
            ),
        (any::<u16>(), arb_name()).prop_map(|(preference, exchange)| RData::Mx {
            preference,
            exchange
        }),
        proptest::collection::vec(proptest::collection::vec(any::<u8>(), 0..40), 1..4)
            .prop_map(RData::Txt),
        (any::<u16>(), any::<u16>(), any::<u16>(), arb_name()).prop_map(
            |(priority, weight, port, target)| RData::Srv {
                priority,
                weight,
                port,
                target
            }
        ),
        (
            any::<u16>(),
            any::<u8>(),
            any::<u8>(),
            proptest::collection::vec(any::<u8>(), 0..300)
        )
            .prop_map(|(flags, protocol, algorithm, public_key)| RData::Dnskey {
                flags,
                protocol,
                algorithm,
                public_key
            }),
        (
            any::<u16>(),
            any::<u8>(),
            any::<u8>(),
            proptest::collection::vec(any::<u8>(), 0..64)
        )
            .prop_map(|(key_tag, algorithm, digest_type, digest)| RData::Ds {
                key_tag,
                algorithm,
                digest_type,
                digest
            }),
        proptest::collection::vec(any::<u8>(), 0..100).prop_map(RData::Unknown),
    ]
}

fn arb_record() -> impl Strategy<Value = RData> {
    arb_rdata()
}

prop_compose! {
    fn arb_full_record()(name in arb_name(), ttl in any::<u32>(), rdata in arb_record(), unk in 256u16..9999) -> Record {
        let rtype = rdata.implied_type().unwrap_or(RrType::Unknown(unk));
        Record { name, rtype, class: RrClass::In, ttl, rdata }
    }
}

prop_compose! {
    fn arb_header()(
        id in any::<u16>(),
        response in any::<bool>(),
        aa in any::<bool>(),
        tc in any::<bool>(),
        rd in any::<bool>(),
        ra in any::<bool>(),
        z in any::<bool>(),
        ad in any::<bool>(),
        cd in any::<bool>(),
        rcode in 0u8..16,
        opcode in 0u8..16,
    ) -> Header {
        Header {
            id,
            response,
            opcode: Opcode::from_code(opcode),
            authoritative: aa,
            truncated: tc,
            recursion_desired: rd,
            recursion_available: ra,
            reserved_z: z,
            authentic_data: ad,
            checking_disabled: cd,
            rcode: Rcode::from_code(rcode),
        }
    }
}

prop_compose! {
    fn arb_message()(
        header in arb_header(),
        qname in arb_name(),
        qtype in arb_rtype(),
        answers in proptest::collection::vec(arb_full_record(), 0..6),
        authorities in proptest::collection::vec(arb_full_record(), 0..4),
        additionals in proptest::collection::vec(arb_full_record(), 0..4),
        with_edns in any::<bool>(),
        do_bit in any::<bool>(),
        payload in 512u16..4096,
    ) -> Message {
        Message {
            header,
            questions: vec![Question { qname, qtype, qclass: RrClass::In }],
            answers,
            authorities,
            additionals,
            edns: with_edns.then(|| Edns { udp_payload_size: payload, dnssec_ok: do_bit, ..Edns::default() }),
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn message_roundtrip_compressed(msg in arb_message()) {
        let bytes = msg.to_bytes().unwrap();
        let dec = Message::from_bytes(&bytes).unwrap();
        prop_assert_eq!(dec, msg);
    }

    #[test]
    fn message_roundtrip_uncompressed(msg in arb_message()) {
        let bytes = msg.to_bytes_uncompressed().unwrap();
        let dec = Message::from_bytes(&bytes).unwrap();
        prop_assert_eq!(dec, msg);
    }

    #[test]
    fn compression_never_grows(msg in arb_message()) {
        let c = msg.to_bytes().unwrap().len();
        let u = msg.to_bytes_uncompressed().unwrap().len();
        prop_assert!(c <= u, "compressed {c} > uncompressed {u}");
    }

    #[test]
    fn name_text_roundtrip(name in arb_name()) {
        let text = name.to_string();
        let back = Name::parse(&text).unwrap();
        prop_assert_eq!(back, name);
    }

    #[test]
    fn decode_arbitrary_bytes_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..200)) {
        let _ = Message::from_bytes(&bytes);
    }

    #[test]
    fn framing_roundtrip(msgs in proptest::collection::vec(proptest::collection::vec(any::<u8>(), 0..500), 1..8), split in 1usize..64) {
        let mut stream = Vec::new();
        for m in &msgs {
            stream.extend(ldp_wire::framing::frame_message(m).unwrap());
        }
        let mut dec = ldp_wire::framing::FrameDecoder::new();
        let mut out = Vec::new();
        for chunk in stream.chunks(split) {
            dec.feed(chunk);
            out.extend(dec.drain_frames());
        }
        prop_assert_eq!(out, msgs);
    }
}
