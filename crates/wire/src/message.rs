//! Full DNS messages: header, question, answer/authority/additional
//! sections, and lifted EDNS0 state.

use std::fmt;

use crate::edns::Edns;
use crate::error::WireError;
use crate::name::Name;
use crate::record::Record;
use crate::rr::{RrClass, RrType};
use crate::wirebuf::{WireReader, WireWriter};

/// DNS opcodes (RFC 1035 §4.1.1, RFC 2136).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Opcode {
    Query,
    IQuery,
    Status,
    Notify,
    Update,
    Unknown(u8),
}

impl Opcode {
    pub fn code(self) -> u8 {
        match self {
            Opcode::Query => 0,
            Opcode::IQuery => 1,
            Opcode::Status => 2,
            Opcode::Notify => 4,
            Opcode::Update => 5,
            Opcode::Unknown(c) => c,
        }
    }

    pub fn from_code(code: u8) -> Self {
        match code {
            0 => Opcode::Query,
            1 => Opcode::IQuery,
            2 => Opcode::Status,
            4 => Opcode::Notify,
            5 => Opcode::Update,
            c => Opcode::Unknown(c),
        }
    }
}

/// DNS response codes (RFC 1035 §4.1.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Rcode {
    NoError,
    FormErr,
    ServFail,
    NxDomain,
    NotImp,
    Refused,
    Unknown(u8),
}

impl Rcode {
    pub fn code(self) -> u8 {
        match self {
            Rcode::NoError => 0,
            Rcode::FormErr => 1,
            Rcode::ServFail => 2,
            Rcode::NxDomain => 3,
            Rcode::NotImp => 4,
            Rcode::Refused => 5,
            Rcode::Unknown(c) => c,
        }
    }

    pub fn from_code(code: u8) -> Self {
        match code {
            0 => Rcode::NoError,
            1 => Rcode::FormErr,
            2 => Rcode::ServFail,
            3 => Rcode::NxDomain,
            4 => Rcode::NotImp,
            5 => Rcode::Refused,
            c => Rcode::Unknown(c),
        }
    }
}

impl fmt::Display for Rcode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Rcode::NoError => f.write_str("NOERROR"),
            Rcode::FormErr => f.write_str("FORMERR"),
            Rcode::ServFail => f.write_str("SERVFAIL"),
            Rcode::NxDomain => f.write_str("NXDOMAIN"),
            Rcode::NotImp => f.write_str("NOTIMP"),
            Rcode::Refused => f.write_str("REFUSED"),
            Rcode::Unknown(c) => write!(f, "RCODE{c}"),
        }
    }
}

/// Parsed DNS header flags and ID.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Header {
    pub id: u16,
    /// Response flag (QR).
    pub response: bool,
    pub opcode: Opcode,
    /// Authoritative answer (AA).
    pub authoritative: bool,
    /// Truncation (TC).
    pub truncated: bool,
    /// Recursion desired (RD).
    pub recursion_desired: bool,
    /// Recursion available (RA).
    pub recursion_available: bool,
    /// Reserved Z bit (bit 6). Must be zero per RFC 1035 §4.1.1 but is seen
    /// set in real traces; preserved verbatim so replayed queries stay
    /// byte-identical to the capture.
    pub reserved_z: bool,
    /// Authentic data (AD, RFC 4035).
    pub authentic_data: bool,
    /// Checking disabled (CD, RFC 4035).
    pub checking_disabled: bool,
    pub rcode: Rcode,
}

impl Default for Header {
    fn default() -> Self {
        Header {
            id: 0,
            response: false,
            opcode: Opcode::Query,
            authoritative: false,
            truncated: false,
            recursion_desired: false,
            recursion_available: false,
            reserved_z: false,
            authentic_data: false,
            checking_disabled: false,
            rcode: Rcode::NoError,
        }
    }
}

impl Header {
    fn flags_word(&self) -> u16 {
        u16::from(self.response) << 15
            | (u16::from(self.opcode.code()) & 0xF) << 11
            | u16::from(self.authoritative) << 10
            | u16::from(self.truncated) << 9
            | u16::from(self.recursion_desired) << 8
            | u16::from(self.recursion_available) << 7
            | u16::from(self.reserved_z) << 6
            | u16::from(self.authentic_data) << 5
            | u16::from(self.checking_disabled) << 4
            | u16::from(self.rcode.code()) & 0xF
    }

    fn from_flags_word(id: u16, w: u16) -> Header {
        Header {
            id,
            response: w >> 15 & 1 == 1,
            opcode: Opcode::from_code((w >> 11 & 0xF) as u8), // ldp-lint: allow(r2) -- masked to 4 bits
            authoritative: w >> 10 & 1 == 1,
            truncated: w >> 9 & 1 == 1,
            recursion_desired: w >> 8 & 1 == 1,
            recursion_available: w >> 7 & 1 == 1,
            reserved_z: w >> 6 & 1 == 1,
            authentic_data: w >> 5 & 1 == 1,
            checking_disabled: w >> 4 & 1 == 1,
            rcode: Rcode::from_code((w & 0xF) as u8), // ldp-lint: allow(r2) -- masked to 4 bits
        }
    }
}

/// A question section entry.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Question {
    pub qname: Name,
    pub qtype: RrType,
    pub qclass: RrClass,
}

impl Question {
    /// `IN`-class question.
    pub fn new(qname: Name, qtype: RrType) -> Question {
        Question {
            qname,
            qtype,
            qclass: RrClass::In,
        }
    }
}

impl fmt::Display for Question {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {} {}", self.qname, self.qclass, self.qtype)
    }
}

/// A complete DNS message.
///
/// The OPT pseudo-record is lifted out of the additional section into
/// [`Message::edns`]; encoding appends it back. This keeps section contents
/// semantic (real records only) for zone construction and mutation.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Message {
    pub header: Header,
    pub questions: Vec<Question>,
    pub answers: Vec<Record>,
    pub authorities: Vec<Record>,
    pub additionals: Vec<Record>,
    pub edns: Option<Edns>,
}

impl Message {
    /// Builds a recursive query for `qname`/`qtype` with the given ID.
    pub fn query(id: u16, qname: Name, qtype: RrType) -> Message {
        Message {
            header: Header {
                id,
                recursion_desired: true,
                ..Header::default()
            },
            questions: vec![Question::new(qname, qtype)],
            ..Message::default()
        }
    }

    /// Builds an empty response skeleton mirroring a query's ID, question,
    /// RD flag, and (per convention) EDNS presence.
    pub fn response_for(query: &Message) -> Message {
        Message {
            header: Header {
                id: query.header.id,
                response: true,
                opcode: query.header.opcode,
                recursion_desired: query.header.recursion_desired,
                ..Header::default()
            },
            questions: query.questions.clone(),
            edns: query.edns.as_ref().map(|e| Edns {
                udp_payload_size: crate::DEFAULT_EDNS_PAYLOAD,
                dnssec_ok: e.dnssec_ok,
                ..Edns::default()
            }),
            ..Message::default()
        }
    }

    /// First question, if any (the overwhelmingly common case is exactly
    /// one).
    pub fn question(&self) -> Option<&Question> {
        self.questions.first()
    }

    /// True when the requester set the EDNS DO bit.
    pub fn dnssec_ok(&self) -> bool {
        self.edns.as_ref().map(|e| e.dnssec_ok).unwrap_or(false)
    }

    /// Encodes to wire format with name compression.
    pub fn to_bytes(&self) -> Result<Vec<u8>, WireError> {
        self.encode_with(WireWriter::new())
    }

    /// Encodes without name compression (ablation path).
    pub fn to_bytes_uncompressed(&self) -> Result<Vec<u8>, WireError> {
        self.encode_with(WireWriter::uncompressed())
    }

    fn encode_with(&self, mut w: WireWriter) -> Result<Vec<u8>, WireError> {
        w.put_u16(self.header.id);
        w.put_u16(self.header.flags_word());
        let counts = [
            self.questions.len(),
            self.answers.len(),
            self.authorities.len(),
            self.additionals.len() + self.edns.is_some() as usize,
        ];
        for c in counts {
            w.put_u16(u16::try_from(c).map_err(|_| WireError::MessageTooLong(c))?);
        }
        for q in &self.questions {
            w.put_name(&q.qname)?;
            w.put_u16(q.qtype.code());
            w.put_u16(q.qclass.code());
        }
        for rec in self
            .answers
            .iter()
            .chain(self.authorities.iter())
            .chain(self.additionals.iter())
        {
            rec.encode(&mut w)?;
        }
        if let Some(edns) = &self.edns {
            edns.encode(&mut w)?;
        }
        let bytes = w.into_bytes();
        if bytes.len() > u16::MAX as usize {
            return Err(WireError::MessageTooLong(bytes.len()));
        }
        // Debug-build invariant: encoding is lossless — decoding the bytes
        // we just produced yields this message back. Assumes canonical
        // headers (opcode/rcode values fit their 4-bit wire fields), which
        // every constructor in this crate maintains.
        debug_assert_eq!(
            Message::from_bytes(&bytes).as_ref(),
            Ok(self),
            "encode→decode round-trip must be lossless"
        );
        Ok(bytes)
    }

    /// Decodes a message from wire format.
    pub fn from_bytes(bytes: &[u8]) -> Result<Message, WireError> {
        let mut r = WireReader::new(bytes);
        let id = r.read_u16("header id")?;
        let flags = r.read_u16("header flags")?;
        let header = Header::from_flags_word(id, flags);
        let qdcount = r.read_u16("qdcount")?;
        let ancount = r.read_u16("ancount")?;
        let nscount = r.read_u16("nscount")?;
        let arcount = r.read_u16("arcount")?;

        let mut questions = Vec::with_capacity(qdcount as usize);
        for _ in 0..qdcount {
            let qname = r.read_name()?;
            let qtype = RrType::from_code(r.read_u16("qtype")?);
            let qclass = RrClass::from_code(r.read_u16("qclass")?);
            questions.push(Question {
                qname,
                qtype,
                qclass,
            });
        }

        let mut answers = Vec::with_capacity(ancount as usize);
        for _ in 0..ancount {
            answers.push(Record::decode(&mut r)?);
        }
        let mut authorities = Vec::with_capacity(nscount as usize);
        for _ in 0..nscount {
            authorities.push(Record::decode(&mut r)?);
        }

        let mut additionals = Vec::new();
        let mut edns = None;
        for _ in 0..arcount {
            // OPT needs custom field interpretation, so peek at the type.
            let mark = r.position();
            let name = r.read_name()?;
            let rtype = RrType::from_code(r.read_u16("ar type")?);
            if rtype == RrType::Opt {
                if !name.is_root() {
                    return Err(WireError::BadText("OPT owner must be root".into()));
                }
                let class = r.read_u16("opt class")?;
                let ttl = r.read_u32("opt ttl")?;
                edns = Some(Edns::decode_body(&mut r, class, ttl)?);
            } else {
                r.seek(mark)?;
                additionals.push(Record::decode(&mut r)?);
            }
        }

        Ok(Message {
            header,
            questions,
            answers,
            authorities,
            additionals,
            edns,
        })
    }

    /// Total record count across answer/authority/additional sections
    /// (excluding OPT).
    pub fn record_count(&self) -> usize {
        self.answers.len() + self.authorities.len() + self.additionals.len()
    }

    /// Approximate uncompressed wire size, used by bandwidth models before
    /// paying for a real encode.
    pub fn wire_size_estimate(&self) -> usize {
        12 + self
            .questions
            .iter()
            .map(|q| q.qname.wire_len() + 4)
            .sum::<usize>()
            + self
                .answers
                .iter()
                .chain(self.authorities.iter())
                .chain(self.additionals.iter())
                .map(Record::wire_size_estimate)
                .sum::<usize>()
            + self.edns.as_ref().map(Edns::wire_size).unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rdata::RData;

    fn n(s: &str) -> Name {
        Name::parse(s).unwrap()
    }

    fn sample_response() -> Message {
        let mut m = Message::query(0x1234, n("www.example.com"), RrType::A);
        m.edns = Some(Edns::with_do());
        let mut resp = Message::response_for(&m);
        resp.header.authoritative = true;
        resp.answers.push(Record::new(
            n("www.example.com"),
            300,
            RData::A("192.0.2.80".parse().unwrap()),
        ));
        resp.authorities.push(Record::new(
            n("example.com"),
            3600,
            RData::Ns(n("ns1.example.com")),
        ));
        resp.additionals.push(Record::new(
            n("ns1.example.com"),
            3600,
            RData::A("192.0.2.53".parse().unwrap()),
        ));
        resp
    }

    #[test]
    fn query_roundtrip() {
        let q = Message::query(7, n("example.com"), RrType::Ns);
        let bytes = q.to_bytes().unwrap();
        let dec = Message::from_bytes(&bytes).unwrap();
        assert_eq!(dec, q);
        assert!(dec.header.recursion_desired);
        assert!(!dec.header.response);
    }

    #[test]
    fn response_roundtrip_with_edns() {
        let resp = sample_response();
        let bytes = resp.to_bytes().unwrap();
        let dec = Message::from_bytes(&bytes).unwrap();
        assert_eq!(dec, resp);
        assert!(dec.dnssec_ok());
        assert!(dec.header.authoritative);
        assert_eq!(dec.record_count(), 3);
    }

    #[test]
    fn compressed_smaller_than_uncompressed() {
        let resp = sample_response();
        let compressed = resp.to_bytes().unwrap();
        let plain = resp.to_bytes_uncompressed().unwrap();
        assert!(compressed.len() < plain.len());
        // Both decode identically.
        assert_eq!(
            Message::from_bytes(&compressed).unwrap(),
            Message::from_bytes(&plain).unwrap()
        );
    }

    #[test]
    fn response_for_mirrors_query() {
        let mut q = Message::query(42, n("x.test"), RrType::Aaaa);
        q.edns = Some(Edns::with_do());
        let r = Message::response_for(&q);
        assert_eq!(r.header.id, 42);
        assert!(r.header.response);
        assert!(r.header.recursion_desired);
        assert_eq!(r.questions, q.questions);
        assert!(r.dnssec_ok());
    }

    #[test]
    fn header_flag_bits() {
        let h = Header {
            id: 1,
            response: true,
            opcode: Opcode::Query,
            authoritative: true,
            truncated: true,
            recursion_desired: true,
            recursion_available: true,
            reserved_z: true,
            authentic_data: true,
            checking_disabled: true,
            rcode: Rcode::NxDomain,
        };
        let w = h.flags_word();
        let h2 = Header::from_flags_word(1, w);
        assert_eq!(h, h2);
    }

    #[test]
    fn reserved_z_bit_survives_decode_and_reencode() {
        // Regression: the Z bit (flags bit 6) used to be dropped on decode,
        // so replaying a captured query with Z=1 silently emitted Z=0 and
        // the replayed stream no longer matched the trace.
        let mut q = Message::query(7, n("z.test"), RrType::A);
        let mut bytes = q.to_bytes().unwrap();
        bytes[3] |= 0x40; // Z is bit 6 of the flags word (low byte 3)
        let decoded = Message::from_bytes(&bytes).unwrap();
        assert!(decoded.header.reserved_z, "Z bit lost on decode");
        let reencoded = decoded.to_bytes().unwrap();
        assert_eq!(reencoded, bytes, "replayed bytes differ from capture");
        // And the structured form roundtrips too.
        q.header.reserved_z = true;
        assert_eq!(decoded, q);
    }

    #[test]
    fn truncated_message_fails_cleanly() {
        let bytes = sample_response().to_bytes().unwrap();
        for cut in 0..bytes.len() {
            // Must error or produce a message, never panic.
            let _ = Message::from_bytes(&bytes[..cut]);
        }
        assert!(Message::from_bytes(&bytes[..4]).is_err());
    }

    #[test]
    fn opt_with_nonroot_owner_rejected() {
        // Hand-craft: header with arcount=1, then a record that claims OPT
        // but with owner "x.".
        let mut w = WireWriter::new();
        w.put_u16(1); // id
        w.put_u16(0);
        w.put_u16(0);
        w.put_u16(0);
        w.put_u16(0);
        w.put_u16(1); // arcount
        w.put_name(&n("x")).unwrap();
        w.put_u16(RrType::Opt.code());
        w.put_u16(4096);
        w.put_u32(0);
        w.put_u16(0);
        assert!(Message::from_bytes(&w.into_bytes()).is_err());
    }

    #[test]
    fn wire_size_estimate_close_to_uncompressed() {
        let resp = sample_response();
        let est = resp.wire_size_estimate();
        let actual = resp.to_bytes_uncompressed().unwrap().len();
        assert_eq!(est, actual);
    }

    #[test]
    fn rcode_display() {
        assert_eq!(Rcode::NxDomain.to_string(), "NXDOMAIN");
        assert_eq!(Rcode::Unknown(11).to_string(), "RCODE11");
    }

    #[test]
    fn opcode_codes_roundtrip() {
        for c in 0..16u8 {
            assert_eq!(Opcode::from_code(c).code(), c);
        }
        for c in 0..16u8 {
            assert_eq!(Rcode::from_code(c).code(), c);
        }
    }
}
