//! Resource record data (RDATA) for the record types LDplayer understands.

use std::fmt;
use std::net::{Ipv4Addr, Ipv6Addr};

use crate::error::WireError;
use crate::name::Name;
use crate::rr::RrType;
use crate::wirebuf::{WireReader, WireWriter};

/// SOA rdata fields (RFC 1035 §3.3.13).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct SoaData {
    pub mname: Name,
    pub rname: Name,
    pub serial: u32,
    pub refresh: u32,
    pub retry: u32,
    pub expire: u32,
    pub minimum: u32,
}

/// Decoded RDATA.
///
/// Types the zone constructor and servers reason about get structured
/// variants; anything else is preserved verbatim in [`RData::Unknown`] so
/// that replayed responses keep their original sizes.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum RData {
    A(Ipv4Addr),
    Aaaa(Ipv6Addr),
    Ns(Name),
    Cname(Name),
    Ptr(Name),
    Soa(SoaData),
    Mx {
        preference: u16,
        exchange: Name,
    },
    Txt(Vec<Vec<u8>>),
    Srv {
        priority: u16,
        weight: u16,
        port: u16,
        target: Name,
    },
    /// DNSKEY (RFC 4034 §2). `public_key` carries the raw key bytes; for
    /// synthetic DNSSEC experiments its length models the key size.
    Dnskey {
        flags: u16,
        protocol: u8,
        algorithm: u8,
        public_key: Vec<u8>,
    },
    /// RRSIG (RFC 4034 §3). The signature length models the ZSK size in the
    /// DNSSEC what-if experiments (§5.1 of the paper).
    Rrsig {
        type_covered: RrType,
        algorithm: u8,
        labels: u8,
        original_ttl: u32,
        expiration: u32,
        inception: u32,
        key_tag: u16,
        signer: Name,
        signature: Vec<u8>,
    },
    /// DS (RFC 4034 §5).
    Ds {
        key_tag: u16,
        algorithm: u8,
        digest_type: u8,
        digest: Vec<u8>,
    },
    /// NSEC (RFC 4034 §4); the bitmap is kept raw.
    Nsec {
        next: Name,
        type_bitmaps: Vec<u8>,
    },
    /// Anything else, kept as raw bytes keyed by the record type.
    Unknown(Vec<u8>),
}

impl RData {
    /// The record type this rdata belongs with, when structurally implied.
    /// `Unknown` and `Txt`-like variants rely on the enclosing record's type.
    pub fn implied_type(&self) -> Option<RrType> {
        Some(match self {
            RData::A(_) => RrType::A,
            RData::Aaaa(_) => RrType::Aaaa,
            RData::Ns(_) => RrType::Ns,
            RData::Cname(_) => RrType::Cname,
            RData::Ptr(_) => RrType::Ptr,
            RData::Soa(_) => RrType::Soa,
            RData::Mx { .. } => RrType::Mx,
            RData::Txt(_) => RrType::Txt,
            RData::Srv { .. } => RrType::Srv,
            RData::Dnskey { .. } => RrType::Dnskey,
            RData::Rrsig { .. } => RrType::Rrsig,
            RData::Ds { .. } => RrType::Ds,
            RData::Nsec { .. } => RrType::Nsec,
            RData::Unknown(_) => return None,
        })
    }

    /// Encodes rdata into `w` (without the RDLENGTH prefix; the caller
    /// patches that afterwards because compression makes lengths dynamic).
    pub fn encode(&self, w: &mut WireWriter) -> Result<(), WireError> {
        match self {
            RData::A(a) => w.put_ipv4(*a),
            RData::Aaaa(a) => w.put_ipv6(*a),
            RData::Ns(n) | RData::Cname(n) | RData::Ptr(n) => w.put_name(n)?,
            RData::Soa(soa) => {
                w.put_name(&soa.mname)?;
                w.put_name(&soa.rname)?;
                w.put_u32(soa.serial);
                w.put_u32(soa.refresh);
                w.put_u32(soa.retry);
                w.put_u32(soa.expire);
                w.put_u32(soa.minimum);
            }
            RData::Mx {
                preference,
                exchange,
            } => {
                w.put_u16(*preference);
                w.put_name(exchange)?;
            }
            RData::Txt(strings) => {
                for s in strings {
                    let len = u8::try_from(s.len())
                        .map_err(|_| WireError::BadText("TXT string over 255 bytes".into()))?;
                    w.put_u8(len);
                    w.put_slice(s);
                }
            }
            RData::Srv {
                priority,
                weight,
                port,
                target,
            } => {
                w.put_u16(*priority);
                w.put_u16(*weight);
                w.put_u16(*port);
                // RFC 2782: target must not be compressed.
                let mut uw = WireWriter::uncompressed();
                uw.put_name(target)?;
                w.put_slice(uw.as_slice());
            }
            RData::Dnskey {
                flags,
                protocol,
                algorithm,
                public_key,
            } => {
                w.put_u16(*flags);
                w.put_u8(*protocol);
                w.put_u8(*algorithm);
                w.put_slice(public_key);
            }
            RData::Rrsig {
                type_covered,
                algorithm,
                labels,
                original_ttl,
                expiration,
                inception,
                key_tag,
                signer,
                signature,
            } => {
                w.put_u16(type_covered.code());
                w.put_u8(*algorithm);
                w.put_u8(*labels);
                w.put_u32(*original_ttl);
                w.put_u32(*expiration);
                w.put_u32(*inception);
                w.put_u16(*key_tag);
                // RFC 4034 §3.1.7: signer name is never compressed.
                let mut uw = WireWriter::uncompressed();
                uw.put_name(signer)?;
                w.put_slice(uw.as_slice());
                w.put_slice(signature);
            }
            RData::Ds {
                key_tag,
                algorithm,
                digest_type,
                digest,
            } => {
                w.put_u16(*key_tag);
                w.put_u8(*algorithm);
                w.put_u8(*digest_type);
                w.put_slice(digest);
            }
            RData::Nsec { next, type_bitmaps } => {
                let mut uw = WireWriter::uncompressed();
                uw.put_name(next)?;
                w.put_slice(uw.as_slice());
                w.put_slice(type_bitmaps);
            }
            RData::Unknown(raw) => w.put_slice(raw),
        }
        Ok(())
    }

    /// Decodes `rdlen` bytes of rdata of type `rtype` from `r`. The reader
    /// must be positioned at the start of the rdata; on success it is
    /// positioned exactly at its end.
    pub fn decode(r: &mut WireReader<'_>, rtype: RrType, rdlen: usize) -> Result<RData, WireError> {
        let start = r.position();
        let end = start + rdlen;
        if r.remaining() < rdlen {
            return Err(WireError::Truncated { context: "rdata" });
        }
        let data = match rtype {
            RrType::A => RData::A(r.read_ipv4()?),
            RrType::Aaaa => RData::Aaaa(r.read_ipv6()?),
            RrType::Ns => RData::Ns(r.read_name()?),
            RrType::Cname => RData::Cname(r.read_name()?),
            RrType::Ptr => RData::Ptr(r.read_name()?),
            RrType::Soa => RData::Soa(SoaData {
                mname: r.read_name()?,
                rname: r.read_name()?,
                serial: r.read_u32("soa serial")?,
                refresh: r.read_u32("soa refresh")?,
                retry: r.read_u32("soa retry")?,
                expire: r.read_u32("soa expire")?,
                minimum: r.read_u32("soa minimum")?,
            }),
            RrType::Mx => RData::Mx {
                preference: r.read_u16("mx preference")?,
                exchange: r.read_name()?,
            },
            RrType::Txt => {
                let mut strings = Vec::new();
                while r.position() < end {
                    let len = r.read_u8("txt length")? as usize;
                    if r.position() + len > end {
                        return Err(WireError::Truncated {
                            context: "txt string",
                        });
                    }
                    strings.push(r.read_bytes(len, "txt string")?.to_vec());
                }
                RData::Txt(strings)
            }
            RrType::Srv => RData::Srv {
                priority: r.read_u16("srv priority")?,
                weight: r.read_u16("srv weight")?,
                port: r.read_u16("srv port")?,
                target: r.read_name()?,
            },
            RrType::Dnskey => {
                let flags = r.read_u16("dnskey flags")?;
                let protocol = r.read_u8("dnskey protocol")?;
                let algorithm = r.read_u8("dnskey algorithm")?;
                let keylen = end
                    .checked_sub(r.position())
                    .ok_or(WireError::BadRdataLength {
                        expected: rdlen,
                        actual: r.position() - start,
                    })?;
                RData::Dnskey {
                    flags,
                    protocol,
                    algorithm,
                    public_key: r.read_bytes(keylen, "dnskey key")?.to_vec(),
                }
            }
            RrType::Rrsig => {
                let type_covered = RrType::from_code(r.read_u16("rrsig covered")?);
                let algorithm = r.read_u8("rrsig algorithm")?;
                let labels = r.read_u8("rrsig labels")?;
                let original_ttl = r.read_u32("rrsig ttl")?;
                let expiration = r.read_u32("rrsig expiration")?;
                let inception = r.read_u32("rrsig inception")?;
                let key_tag = r.read_u16("rrsig key tag")?;
                let signer = r.read_name()?;
                let siglen = end
                    .checked_sub(r.position())
                    .ok_or(WireError::BadRdataLength {
                        expected: rdlen,
                        actual: r.position() - start,
                    })?;
                RData::Rrsig {
                    type_covered,
                    algorithm,
                    labels,
                    original_ttl,
                    expiration,
                    inception,
                    key_tag,
                    signer,
                    signature: r.read_bytes(siglen, "rrsig signature")?.to_vec(),
                }
            }
            RrType::Ds => {
                let key_tag = r.read_u16("ds key tag")?;
                let algorithm = r.read_u8("ds algorithm")?;
                let digest_type = r.read_u8("ds digest type")?;
                let dlen = end
                    .checked_sub(r.position())
                    .ok_or(WireError::BadRdataLength {
                        expected: rdlen,
                        actual: r.position() - start,
                    })?;
                RData::Ds {
                    key_tag,
                    algorithm,
                    digest_type,
                    digest: r.read_bytes(dlen, "ds digest")?.to_vec(),
                }
            }
            RrType::Nsec => {
                let next = r.read_name()?;
                let blen = end
                    .checked_sub(r.position())
                    .ok_or(WireError::BadRdataLength {
                        expected: rdlen,
                        actual: r.position() - start,
                    })?;
                RData::Nsec {
                    next,
                    type_bitmaps: r.read_bytes(blen, "nsec bitmap")?.to_vec(),
                }
            }
            _ => RData::Unknown(r.read_bytes(rdlen, "unknown rdata")?.to_vec()),
        };
        if r.position() != end {
            return Err(WireError::BadRdataLength {
                expected: rdlen,
                actual: r.position() - start,
            });
        }
        Ok(data)
    }

    /// Approximate uncompressed rdata size in bytes (used by response-size
    /// models before encoding).
    pub fn wire_size_estimate(&self) -> usize {
        match self {
            RData::A(_) => 4,
            RData::Aaaa(_) => 16,
            RData::Ns(n) | RData::Cname(n) | RData::Ptr(n) => n.wire_len(),
            RData::Soa(s) => s.mname.wire_len() + s.rname.wire_len() + 20,
            RData::Mx { exchange, .. } => 2 + exchange.wire_len(),
            RData::Txt(v) => v.iter().map(|s| 1 + s.len()).sum(),
            RData::Srv { target, .. } => 6 + target.wire_len(),
            RData::Dnskey { public_key, .. } => 4 + public_key.len(),
            RData::Rrsig {
                signer, signature, ..
            } => 18 + signer.wire_len() + signature.len(),
            RData::Ds { digest, .. } => 4 + digest.len(),
            RData::Nsec { next, type_bitmaps } => next.wire_len() + type_bitmaps.len(),
            RData::Unknown(raw) => raw.len(),
        }
    }
}

impl fmt::Display for RData {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RData::A(a) => write!(f, "{a}"),
            RData::Aaaa(a) => write!(f, "{a}"),
            RData::Ns(n) | RData::Cname(n) | RData::Ptr(n) => write!(f, "{n}"),
            RData::Soa(s) => write!(
                f,
                "{} {} {} {} {} {} {}",
                s.mname, s.rname, s.serial, s.refresh, s.retry, s.expire, s.minimum
            ),
            RData::Mx {
                preference,
                exchange,
            } => write!(f, "{preference} {exchange}"),
            RData::Txt(strings) => {
                let mut first = true;
                for s in strings {
                    if !first {
                        f.write_str(" ")?;
                    }
                    first = false;
                    write!(f, "\"{}\"", escape_txt(s))?;
                }
                Ok(())
            }
            RData::Srv {
                priority,
                weight,
                port,
                target,
            } => write!(f, "{priority} {weight} {port} {target}"),
            RData::Dnskey {
                flags,
                protocol,
                algorithm,
                public_key,
            } => write!(
                f,
                "{flags} {protocol} {algorithm} {}",
                hex(public_key)
            ),
            RData::Rrsig {
                type_covered,
                algorithm,
                labels,
                original_ttl,
                expiration,
                inception,
                key_tag,
                signer,
                signature,
            } => write!(
                f,
                "{type_covered} {algorithm} {labels} {original_ttl} {expiration} {inception} {key_tag} {signer} {}",
                hex(signature)
            ),
            RData::Ds {
                key_tag,
                algorithm,
                digest_type,
                digest,
            } => write!(f, "{key_tag} {algorithm} {digest_type} {}", hex(digest)),
            RData::Nsec { next, type_bitmaps } => {
                write!(f, "{next} {}", hex(type_bitmaps))
            }
            RData::Unknown(raw) => write!(f, "\\# {} {}", raw.len(), hex(raw)),
        }
    }
}

fn hex(bytes: &[u8]) -> String {
    let mut s = String::with_capacity(bytes.len() * 2);
    for b in bytes {
        s.push_str(&format!("{b:02x}"));
    }
    s
}

fn escape_txt(s: &[u8]) -> String {
    let mut out = String::new();
    for &b in s {
        match b {
            b'"' | b'\\' => {
                out.push('\\');
                out.push(b as char);
            }
            0x20..=0x7e => out.push(b as char),
            _ => out.push_str(&format!("\\{b:03}")),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(s: &str) -> Name {
        Name::parse(s).unwrap()
    }

    fn roundtrip(rd: &RData, rtype: RrType) -> RData {
        let mut w = WireWriter::new();
        rd.encode(&mut w).unwrap();
        let bytes = w.into_bytes();
        let mut r = WireReader::new(&bytes);
        RData::decode(&mut r, rtype, bytes.len()).unwrap()
    }

    #[test]
    fn a_roundtrip() {
        let rd = RData::A("192.0.2.7".parse().unwrap());
        assert_eq!(roundtrip(&rd, RrType::A), rd);
        assert_eq!(rd.wire_size_estimate(), 4);
    }

    #[test]
    fn aaaa_roundtrip() {
        let rd = RData::Aaaa("2001:db8::1".parse().unwrap());
        assert_eq!(roundtrip(&rd, RrType::Aaaa), rd);
        assert_eq!(rd.wire_size_estimate(), 16);
    }

    #[test]
    fn soa_roundtrip() {
        let rd = RData::Soa(SoaData {
            mname: n("ns1.example.com"),
            rname: n("hostmaster.example.com"),
            serial: 2024010101,
            refresh: 7200,
            retry: 3600,
            expire: 1209600,
            minimum: 300,
        });
        assert_eq!(roundtrip(&rd, RrType::Soa), rd);
    }

    #[test]
    fn mx_srv_txt_roundtrip() {
        let mx = RData::Mx {
            preference: 10,
            exchange: n("mail.example.com"),
        };
        assert_eq!(roundtrip(&mx, RrType::Mx), mx);
        let srv = RData::Srv {
            priority: 1,
            weight: 5,
            port: 443,
            target: n("svc.example.com"),
        };
        assert_eq!(roundtrip(&srv, RrType::Srv), srv);
        let txt = RData::Txt(vec![b"v=spf1 -all".to_vec(), b"second".to_vec()]);
        assert_eq!(roundtrip(&txt, RrType::Txt), txt);
    }

    #[test]
    fn txt_string_too_long_rejected() {
        let txt = RData::Txt(vec![vec![b'x'; 256]]);
        let mut w = WireWriter::new();
        assert!(txt.encode(&mut w).is_err());
    }

    #[test]
    fn dnssec_roundtrips() {
        let dnskey = RData::Dnskey {
            flags: 256,
            protocol: 3,
            algorithm: 8,
            public_key: vec![0xAB; 128],
        };
        assert_eq!(roundtrip(&dnskey, RrType::Dnskey), dnskey);

        let rrsig = RData::Rrsig {
            type_covered: RrType::A,
            algorithm: 8,
            labels: 2,
            original_ttl: 3600,
            expiration: 1735689600,
            inception: 1733011200,
            key_tag: 12345,
            signer: n("example.com"),
            signature: vec![0xCD; 256],
        };
        assert_eq!(roundtrip(&rrsig, RrType::Rrsig), rrsig);

        let ds = RData::Ds {
            key_tag: 60485,
            algorithm: 8,
            digest_type: 2,
            digest: vec![0xEF; 32],
        };
        assert_eq!(roundtrip(&ds, RrType::Ds), ds);

        let nsec = RData::Nsec {
            next: n("b.example.com"),
            type_bitmaps: vec![0, 6, 0x40, 0x01, 0, 0, 0, 3],
        };
        assert_eq!(roundtrip(&nsec, RrType::Nsec), nsec);
    }

    #[test]
    fn unknown_preserved() {
        let rd = RData::Unknown(vec![1, 2, 3, 4, 5]);
        assert_eq!(roundtrip(&rd, RrType::Unknown(999)), rd);
        assert_eq!(rd.wire_size_estimate(), 5);
    }

    #[test]
    fn rdlen_mismatch_detected() {
        // Claim 5 bytes of A rdata; decoder reads 4 and must flag mismatch.
        let bytes = [192, 0, 2, 1, 99];
        let mut r = WireReader::new(&bytes);
        assert!(matches!(
            RData::decode(&mut r, RrType::A, 5),
            Err(WireError::BadRdataLength { .. })
        ));
    }

    #[test]
    fn truncated_rdata_detected() {
        let bytes = [192, 0];
        let mut r = WireReader::new(&bytes);
        assert!(RData::decode(&mut r, RrType::A, 4).is_err());
    }

    #[test]
    fn implied_types() {
        assert_eq!(
            RData::A("192.0.2.1".parse().unwrap()).implied_type(),
            Some(RrType::A)
        );
        assert_eq!(RData::Unknown(vec![]).implied_type(), None);
    }

    #[test]
    fn display_forms() {
        assert_eq!(
            RData::A("192.0.2.1".parse().unwrap()).to_string(),
            "192.0.2.1"
        );
        let txt = RData::Txt(vec![b"a\"b".to_vec()]);
        assert_eq!(txt.to_string(), "\"a\\\"b\"");
    }
}
