//! Domain names.
//!
//! A [`Name`] is a sequence of labels stored lowercase (DNS names compare
//! case-insensitively; LDplayer normalizes on construction so that zone
//! lookups and trace matching are plain byte comparisons).

use crate::error::WireError;
use std::fmt;
use std::str::FromStr;

/// Maximum length of a single label in octets (RFC 1035 §2.3.4).
pub const MAX_LABEL_LEN: usize = 63;
/// Maximum length of a name in wire form, including the root length octet.
pub const MAX_NAME_LEN: usize = 255;

/// A fully-qualified domain name.
///
/// Internally stored as a vector of lowercase labels; the root name has zero
/// labels. Display form always includes the trailing dot for the root and
/// omits it otherwise only when empty (i.e. `.` for root, `example.com.`
/// style otherwise), matching zone-file conventions.
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct Name {
    labels: Vec<Box<[u8]>>,
}

impl Name {
    /// The root name (`.`).
    pub fn root() -> Self {
        Name { labels: Vec::new() }
    }

    /// Builds a name from raw labels. Labels are lowercased; empty labels are
    /// rejected, as are labels over 63 octets.
    pub fn from_labels<I, L>(labels: I) -> Result<Self, WireError>
    where
        I: IntoIterator<Item = L>,
        L: AsRef<[u8]>,
    {
        let mut out: Vec<Box<[u8]>> = Vec::new();
        for l in labels {
            let l = l.as_ref();
            if l.is_empty() {
                return Err(WireError::BadText("empty label".into()));
            }
            if l.len() > MAX_LABEL_LEN {
                return Err(WireError::LabelTooLong(l.len()));
            }
            out.push(l.to_ascii_lowercase().into_boxed_slice());
        }
        let name = Name { labels: out };
        let wire = name.wire_len();
        if wire > MAX_NAME_LEN {
            return Err(WireError::NameTooLong(wire));
        }
        Ok(name)
    }

    /// Parses dotted text form. Accepts an optional trailing dot. `"."` and
    /// `""` both denote the root. Backslash escapes (`\.` and `\ddd`) are
    /// supported as in zone files.
    pub fn parse(text: &str) -> Result<Self, WireError> {
        if text == "." || text.is_empty() {
            return Ok(Name::root());
        }
        let bytes = text.as_bytes();
        let mut labels: Vec<Vec<u8>> = Vec::new();
        let mut cur: Vec<u8> = Vec::new();
        let mut i = 0;
        while i < bytes.len() {
            match bytes[i] {
                b'\\' => {
                    if i + 1 >= bytes.len() {
                        return Err(WireError::BadText(format!("dangling escape in {text:?}")));
                    }
                    let c = bytes[i + 1];
                    if c.is_ascii_digit() {
                        if i + 3 >= bytes.len()
                            || !bytes[i + 2].is_ascii_digit()
                            || !bytes[i + 3].is_ascii_digit()
                        {
                            return Err(WireError::BadText(format!(
                                "bad \\ddd escape in {text:?}"
                            )));
                        }
                        let v = u32::from(bytes[i + 1] - b'0') * 100
                            + u32::from(bytes[i + 2] - b'0') * 10
                            + u32::from(bytes[i + 3] - b'0');
                        let byte = u8::try_from(v).map_err(|_| {
                            WireError::BadText(format!("\\ddd escape out of range in {text:?}"))
                        })?;
                        cur.push(byte);
                        i += 4;
                    } else {
                        cur.push(c);
                        i += 2;
                    }
                }
                b'.' => {
                    if cur.is_empty() {
                        return Err(WireError::BadText(format!("empty label in {text:?}")));
                    }
                    labels.push(std::mem::take(&mut cur));
                    i += 1;
                }
                c => {
                    cur.push(c);
                    i += 1;
                }
            }
        }
        if !cur.is_empty() {
            labels.push(cur);
        }
        Name::from_labels(labels)
    }

    /// Number of labels (0 for the root).
    pub fn label_count(&self) -> usize {
        self.labels.len()
    }

    /// True for the root name.
    pub fn is_root(&self) -> bool {
        self.labels.is_empty()
    }

    /// Iterates over labels from leftmost (most specific) to rightmost.
    pub fn labels(&self) -> impl Iterator<Item = &[u8]> {
        self.labels.iter().map(|l| l.as_ref())
    }

    /// The leftmost label, if any.
    pub fn first_label(&self) -> Option<&[u8]> {
        self.labels.first().map(|l| l.as_ref())
    }

    /// Length of the wire encoding (uncompressed), including the root octet.
    pub fn wire_len(&self) -> usize {
        1 + self.labels.iter().map(|l| l.len() + 1).sum::<usize>()
    }

    /// True if `self` is equal to or a subdomain of `ancestor`
    /// (`www.example.com` is within `example.com` and `.`).
    pub fn is_subdomain_of(&self, ancestor: &Name) -> bool {
        if ancestor.labels.len() > self.labels.len() {
            return false;
        }
        let skip = self.labels.len() - ancestor.labels.len();
        self.labels[skip..] == ancestor.labels[..]
    }

    /// The immediate parent (`example.com` → `com`); `None` for the root.
    pub fn parent(&self) -> Option<Name> {
        if self.labels.is_empty() {
            None
        } else {
            Some(Name {
                labels: self.labels[1..].to_vec(),
            })
        }
    }

    /// Strips `suffix` labels from the right, keeping the leftmost
    /// `label_count() - suffix` labels.
    pub fn ancestor(&self, keep_rightmost: usize) -> Option<Name> {
        if keep_rightmost > self.labels.len() {
            return None;
        }
        Some(Name {
            labels: self.labels[self.labels.len() - keep_rightmost..].to_vec(),
        })
    }

    /// Prepends a label (`www` + `example.com` → `www.example.com`).
    pub fn prepend(&self, label: &[u8]) -> Result<Name, WireError> {
        let mut labels: Vec<&[u8]> = Vec::with_capacity(self.labels.len() + 1);
        labels.push(label);
        labels.extend(self.labels());
        Name::from_labels(labels)
    }

    /// Concatenates `self` (as the left part) with `suffix`
    /// (`www` ⊕ `example.com` → `www.example.com`).
    pub fn concat(&self, suffix: &Name) -> Result<Name, WireError> {
        Name::from_labels(self.labels().chain(suffix.labels()))
    }

    /// Replaces the leftmost label with `*`, used for wildcard synthesis.
    pub fn to_wildcard(&self) -> Option<Name> {
        if self.labels.is_empty() {
            return None;
        }
        let mut labels: Vec<&[u8]> = vec![b"*"];
        labels.extend(self.labels().skip(1));
        Name::from_labels(labels).ok()
    }

    /// True if the leftmost label is `*`.
    pub fn is_wildcard(&self) -> bool {
        self.first_label() == Some(b"*".as_ref())
    }

    /// Canonical DNS ordering (RFC 4034 §6.1): compare label sequences
    /// right-to-left. Used for NSEC chains and sorted zone walks.
    pub fn canonical_cmp(&self, other: &Name) -> std::cmp::Ordering {
        let mut a = self.labels.iter().rev();
        let mut b = other.labels.iter().rev();
        loop {
            match (a.next(), b.next()) {
                (None, None) => return std::cmp::Ordering::Equal,
                (None, Some(_)) => return std::cmp::Ordering::Less,
                (Some(_), None) => return std::cmp::Ordering::Greater,
                (Some(x), Some(y)) => match x.cmp(y) {
                    std::cmp::Ordering::Equal => continue,
                    ord => return ord,
                },
            }
        }
    }
}

impl fmt::Display for Name {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.labels.is_empty() {
            return f.write_str(".");
        }
        for l in &self.labels {
            for &b in l.iter() {
                match b {
                    b'.' | b'\\' => write!(f, "\\{}", b as char)?,
                    0x21..=0x7e => write!(f, "{}", b as char)?,
                    _ => write!(f, "\\{b:03}")?,
                }
            }
            f.write_str(".")?;
        }
        Ok(())
    }
}

impl fmt::Debug for Name {
    // Names read better unquoted in test output.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

impl FromStr for Name {
    type Err = WireError;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        Name::parse(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(s: &str) -> Name {
        Name::parse(s).unwrap()
    }

    #[test]
    fn root_roundtrip() {
        assert_eq!(Name::root().to_string(), ".");
        assert_eq!(n("."), Name::root());
        assert_eq!(n(""), Name::root());
        assert!(Name::root().is_root());
        assert_eq!(Name::root().wire_len(), 1);
    }

    #[test]
    fn parse_and_display() {
        assert_eq!(n("Example.COM").to_string(), "example.com.");
        assert_eq!(n("example.com.").to_string(), "example.com.");
        assert_eq!(n("a.b.c").label_count(), 3);
    }

    #[test]
    fn case_insensitive_equality() {
        assert_eq!(n("WWW.Example.Com"), n("www.example.com"));
        use std::collections::hash_map::DefaultHasher;
        use std::hash::{Hash, Hasher};
        let mut h1 = DefaultHasher::new();
        let mut h2 = DefaultHasher::new();
        n("AbC.net").hash(&mut h1);
        n("abc.NET").hash(&mut h2);
        assert_eq!(h1.finish(), h2.finish());
    }

    #[test]
    fn escapes() {
        let name = n(r"a\.b.example");
        assert_eq!(name.label_count(), 2);
        assert_eq!(name.first_label().unwrap(), b"a.b");
        assert_eq!(name.to_string(), r"a\.b.example.");
        let esc = n(r"\097.example");
        assert_eq!(esc.first_label().unwrap(), b"a");
    }

    #[test]
    fn escape_errors() {
        assert!(Name::parse(r"a\").is_err());
        assert!(Name::parse(r"\999.example").is_err());
        assert!(Name::parse("a..b").is_err());
    }

    #[test]
    fn label_limits() {
        let long = "a".repeat(63);
        assert!(Name::parse(&long).is_ok());
        let too_long = "a".repeat(64);
        assert!(matches!(
            Name::parse(&too_long),
            Err(WireError::LabelTooLong(64))
        ));
        // Four 63-byte labels = 4*64+1 = 257 wire octets > 255.
        let huge = format!("{long}.{long}.{long}.{long}");
        assert!(matches!(Name::parse(&huge), Err(WireError::NameTooLong(_))));
    }

    #[test]
    fn subdomain_relations() {
        assert!(n("www.example.com").is_subdomain_of(&n("example.com")));
        assert!(n("www.example.com").is_subdomain_of(&Name::root()));
        assert!(n("example.com").is_subdomain_of(&n("example.com")));
        assert!(!n("example.com").is_subdomain_of(&n("www.example.com")));
        assert!(!n("badexample.com").is_subdomain_of(&n("example.com")));
    }

    #[test]
    fn parent_and_ancestor() {
        assert_eq!(n("www.example.com").parent().unwrap(), n("example.com"));
        assert_eq!(n("com").parent().unwrap(), Name::root());
        assert!(Name::root().parent().is_none());
        assert_eq!(n("a.b.c.d").ancestor(2).unwrap(), n("c.d"));
        assert_eq!(n("a.b").ancestor(0).unwrap(), Name::root());
        assert!(n("a.b").ancestor(3).is_none());
    }

    #[test]
    fn prepend_concat() {
        assert_eq!(
            n("example.com").prepend(b"www").unwrap(),
            n("www.example.com")
        );
        assert_eq!(
            n("www").concat(&n("example.com")).unwrap(),
            n("www.example.com")
        );
        assert_eq!(n("x").concat(&Name::root()).unwrap(), n("x"));
    }

    #[test]
    fn wildcards() {
        assert_eq!(
            n("www.example.com").to_wildcard().unwrap(),
            n("*.example.com")
        );
        assert!(n("*.example.com").is_wildcard());
        assert!(!n("www.example.com").is_wildcard());
        assert!(Name::root().to_wildcard().is_none());
    }

    #[test]
    fn canonical_ordering() {
        use std::cmp::Ordering;
        // RFC 4034 §6.1 example order.
        let order = [
            "example",
            "a.example",
            "yljkjljk.a.example",
            "z.a.example",
            "zabc.a.example",
            "z.example",
        ];
        for w in order.windows(2) {
            assert_eq!(
                n(w[0]).canonical_cmp(&n(w[1])),
                Ordering::Less,
                "{} < {}",
                w[0],
                w[1]
            );
        }
        assert_eq!(Name::root().canonical_cmp(&n("com")), Ordering::Less);
    }

    #[test]
    fn wire_len() {
        assert_eq!(n("example.com").wire_len(), 13); // 7+1 + 3+1 + 1
    }
}
