//! Error type for wire encoding and decoding.

use std::fmt;

/// Errors produced while encoding or decoding DNS wire data.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// The input ended before a complete field could be read.
    Truncated {
        /// What was being decoded when the input ran out.
        context: &'static str,
    },
    /// A domain name label exceeded 63 octets.
    LabelTooLong(usize),
    /// A domain name exceeded 255 octets in wire form.
    NameTooLong(usize),
    /// A compression pointer pointed forward or formed a loop.
    BadCompressionPointer(u16),
    /// Too many compression pointer hops (loop guard).
    PointerLoop,
    /// A label type other than `00` (plain) or `11` (pointer) was seen.
    BadLabelType(u8),
    /// Text representation of a name or record could not be parsed.
    BadText(String),
    /// The RDATA length did not match the decoded content.
    BadRdataLength { expected: usize, actual: usize },
    /// A message exceeded the maximum encodable size (65535 bytes).
    MessageTooLong(usize),
    /// Unknown or unsupported opcode/rcode/type encountered where a known
    /// value is required.
    Unsupported(&'static str),
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Truncated { context } => {
                write!(f, "truncated input while decoding {context}")
            }
            WireError::LabelTooLong(n) => write!(f, "label of {n} octets exceeds 63"),
            WireError::NameTooLong(n) => write!(f, "name of {n} octets exceeds 255"),
            WireError::BadCompressionPointer(off) => {
                write!(f, "bad compression pointer to offset {off}")
            }
            WireError::PointerLoop => write!(f, "compression pointer loop"),
            WireError::BadLabelType(b) => write!(f, "unsupported label type {b:#04x}"),
            WireError::BadText(s) => write!(f, "bad text representation: {s}"),
            WireError::BadRdataLength { expected, actual } => {
                write!(
                    f,
                    "rdata length mismatch: expected {expected}, got {actual}"
                )
            }
            WireError::MessageTooLong(n) => write!(f, "message of {n} bytes exceeds 65535"),
            WireError::Unsupported(what) => write!(f, "unsupported {what}"),
        }
    }
}

impl std::error::Error for WireError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = WireError::Truncated { context: "header" };
        assert!(e.to_string().contains("header"));
        let e = WireError::BadRdataLength {
            expected: 4,
            actual: 3,
        };
        assert!(e.to_string().contains('4') && e.to_string().contains('3'));
    }
}
