//! Resource records: a name, type, class, TTL, and rdata.

use std::fmt;

use crate::error::WireError;
use crate::name::Name;
use crate::rdata::RData;
use crate::rr::{RrClass, RrType};
use crate::wirebuf::{WireReader, WireWriter};

/// A DNS resource record.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Record {
    pub name: Name,
    pub rtype: RrType,
    pub class: RrClass,
    pub ttl: u32,
    pub rdata: RData,
}

impl Record {
    /// Convenience constructor for `IN`-class records. The type is taken
    /// from the rdata when structurally implied.
    pub fn new(name: Name, ttl: u32, rdata: RData) -> Record {
        let rtype = rdata.implied_type().unwrap_or(RrType::Unknown(0));
        Record {
            name,
            rtype,
            class: RrClass::In,
            ttl,
            rdata,
        }
    }

    /// Constructor with an explicit type, required for `Unknown` rdata.
    pub fn with_type(name: Name, rtype: RrType, ttl: u32, rdata: RData) -> Record {
        Record {
            name,
            rtype,
            class: RrClass::In,
            ttl,
            rdata,
        }
    }

    /// Encodes the record, compressing names against the writer state.
    pub fn encode(&self, w: &mut WireWriter) -> Result<(), WireError> {
        w.put_name(&self.name)?;
        w.put_u16(self.rtype.code());
        w.put_u16(self.class.code());
        w.put_u32(self.ttl);
        let len_at = w.len();
        w.put_u16(0); // RDLENGTH placeholder
        let rdata_start = w.len();
        self.rdata.encode(w)?;
        let rdlen = w.len() - rdata_start;
        w.patch_u16(
            len_at,
            u16::try_from(rdlen).map_err(|_| WireError::MessageTooLong(rdlen))?,
        );
        Ok(())
    }

    /// Decodes one record at the reader cursor.
    pub fn decode(r: &mut WireReader<'_>) -> Result<Record, WireError> {
        let name = r.read_name()?;
        let rtype = RrType::from_code(r.read_u16("record type")?);
        let class = RrClass::from_code(r.read_u16("record class")?);
        let ttl = r.read_u32("record ttl")?;
        let rdlen = r.read_u16("rdlength")? as usize;
        let rdata = RData::decode(r, rtype, rdlen)?;
        Ok(Record {
            name,
            rtype,
            class,
            ttl,
            rdata,
        })
    }

    /// Approximate uncompressed wire size, used by response-size models.
    pub fn wire_size_estimate(&self) -> usize {
        self.name.wire_len() + 10 + self.rdata.wire_size_estimate()
    }
}

impl fmt::Display for Record {
    /// Master-file presentation: `name ttl class type rdata`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} {} {} {} {}",
            self.name, self.ttl, self.class, self.rtype, self.rdata
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rdata::SoaData;

    fn n(s: &str) -> Name {
        Name::parse(s).unwrap()
    }

    #[test]
    fn record_roundtrip() {
        let rec = Record::new(
            n("www.example.com"),
            300,
            RData::A("192.0.2.1".parse().unwrap()),
        );
        let mut w = WireWriter::new();
        rec.encode(&mut w).unwrap();
        let bytes = w.into_bytes();
        let mut r = WireReader::new(&bytes);
        assert_eq!(Record::decode(&mut r).unwrap(), rec);
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn record_roundtrip_with_compression() {
        let recs = vec![
            Record::new(n("example.com"), 3600, RData::Ns(n("ns1.example.com"))),
            Record::new(n("example.com"), 3600, RData::Ns(n("ns2.example.com"))),
            Record::new(
                n("ns1.example.com"),
                3600,
                RData::A("192.0.2.53".parse().unwrap()),
            ),
        ];
        let mut w = WireWriter::new();
        for rec in &recs {
            rec.encode(&mut w).unwrap();
        }
        let bytes = w.into_bytes();
        // Compression must beat the naive encoding.
        let naive: usize = recs.iter().map(Record::wire_size_estimate).sum();
        assert!(bytes.len() < naive, "{} !< {naive}", bytes.len());
        let mut r = WireReader::new(&bytes);
        for rec in &recs {
            assert_eq!(&Record::decode(&mut r).unwrap(), rec);
        }
    }

    #[test]
    fn display_is_master_format() {
        let rec = Record::new(
            n("example.com"),
            3600,
            RData::Soa(SoaData {
                mname: n("ns1.example.com"),
                rname: n("admin.example.com"),
                serial: 1,
                refresh: 2,
                retry: 3,
                expire: 4,
                minimum: 5,
            }),
        );
        assert_eq!(
            rec.to_string(),
            "example.com. 3600 IN SOA ns1.example.com. admin.example.com. 1 2 3 4 5"
        );
    }

    #[test]
    fn unknown_type_needs_with_type() {
        let rec = Record::with_type(
            n("x.example"),
            RrType::Unknown(999),
            60,
            RData::Unknown(vec![9, 9]),
        );
        let mut w = WireWriter::new();
        rec.encode(&mut w).unwrap();
        let bytes = w.into_bytes();
        let mut r = WireReader::new(&bytes);
        let dec = Record::decode(&mut r).unwrap();
        assert_eq!(dec.rtype, RrType::Unknown(999));
        assert_eq!(dec.rdata, RData::Unknown(vec![9, 9]));
    }

    #[test]
    fn truncated_record_fails() {
        let rec = Record::new(
            n("www.example.com"),
            300,
            RData::A("192.0.2.1".parse().unwrap()),
        );
        let mut w = WireWriter::new();
        rec.encode(&mut w).unwrap();
        let bytes = w.into_bytes();
        for cut in 1..bytes.len() {
            let mut r = WireReader::new(&bytes[..cut]);
            assert!(Record::decode(&mut r).is_err(), "cut at {cut} should fail");
        }
    }
}
