//! DNS over stream transports: 2-byte length framing (RFC 1035 §4.2.2).
//!
//! Used by the TCP/TLS queriers and by the simulator's stream endpoints.
//! [`FrameDecoder`] is an incremental decoder: feed arbitrary byte chunks,
//! get whole DNS messages out — exactly the shape needed for event-driven
//! connection handling where segment boundaries are arbitrary (the paper's
//! §5.2.4 observes latency artifacts from segment reassembly; the decoder is
//! where that reassembly happens).

use crate::error::WireError;

/// Maximum frame payload (the length prefix is 16 bits).
pub const MAX_FRAME: usize = u16::MAX as usize;

/// Prepends the 2-byte length prefix to a DNS message.
pub fn frame_message(msg: &[u8]) -> Result<Vec<u8>, WireError> {
    let len = u16::try_from(msg.len()).map_err(|_| WireError::MessageTooLong(msg.len()))?;
    let mut out = Vec::with_capacity(msg.len() + 2);
    out.extend_from_slice(&len.to_be_bytes());
    out.extend_from_slice(msg);
    Ok(out)
}

/// Incremental decoder for a stream of length-prefixed DNS messages.
#[derive(Debug, Default)]
pub struct FrameDecoder {
    buf: Vec<u8>,
}

impl FrameDecoder {
    pub fn new() -> Self {
        FrameDecoder { buf: Vec::new() }
    }

    /// Bytes buffered but not yet forming a complete frame.
    pub fn pending(&self) -> usize {
        self.buf.len()
    }

    /// Appends received bytes to the internal buffer.
    pub fn feed(&mut self, chunk: &[u8]) {
        self.buf.extend_from_slice(chunk);
    }

    /// Pops the next complete message, if one is buffered.
    pub fn next_frame(&mut self) -> Option<Vec<u8>> {
        if self.buf.len() < 2 {
            return None;
        }
        let len = u16::from_be_bytes([self.buf[0], self.buf[1]]) as usize;
        if self.buf.len() < 2 + len {
            return None;
        }
        let frame = self.buf[2..2 + len].to_vec();
        self.buf.drain(..2 + len);
        Some(frame)
    }

    /// Drains all complete frames currently buffered.
    pub fn drain_frames(&mut self) -> Vec<Vec<u8>> {
        let mut out = Vec::new();
        while let Some(f) = self.next_frame() {
            out.push(f);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_and_decode() {
        let framed = frame_message(b"hello").unwrap();
        assert_eq!(&framed[..2], &[0, 5]);
        let mut d = FrameDecoder::new();
        d.feed(&framed);
        assert_eq!(d.next_frame().unwrap(), b"hello");
        assert!(d.next_frame().is_none());
        assert_eq!(d.pending(), 0);
    }

    #[test]
    fn byte_at_a_time() {
        let framed = frame_message(b"abc").unwrap();
        let mut d = FrameDecoder::new();
        for (i, b) in framed.iter().enumerate() {
            d.feed(std::slice::from_ref(b));
            if i + 1 < framed.len() {
                assert!(d.next_frame().is_none(), "premature frame at byte {i}");
            }
        }
        assert_eq!(d.next_frame().unwrap(), b"abc");
    }

    #[test]
    fn multiple_frames_in_one_chunk() {
        let mut chunk = frame_message(b"one").unwrap();
        chunk.extend(frame_message(b"two").unwrap());
        chunk.extend(frame_message(b"three").unwrap());
        let mut d = FrameDecoder::new();
        d.feed(&chunk);
        let frames = d.drain_frames();
        assert_eq!(
            frames,
            vec![b"one".to_vec(), b"two".to_vec(), b"three".to_vec()]
        );
    }

    #[test]
    fn split_across_chunks() {
        let framed = frame_message(&vec![7u8; 1000]).unwrap();
        let mut d = FrameDecoder::new();
        d.feed(&framed[..500]);
        assert!(d.next_frame().is_none());
        d.feed(&framed[500..]);
        assert_eq!(d.next_frame().unwrap().len(), 1000);
    }

    #[test]
    fn empty_frame_allowed() {
        let framed = frame_message(b"").unwrap();
        let mut d = FrameDecoder::new();
        d.feed(&framed);
        assert_eq!(d.next_frame().unwrap(), Vec::<u8>::new());
    }

    #[test]
    fn oversized_rejected() {
        let big = vec![0u8; MAX_FRAME + 1];
        assert!(frame_message(&big).is_err());
        assert!(frame_message(&big[..MAX_FRAME]).is_ok());
    }
}
