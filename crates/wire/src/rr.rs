//! Resource-record type and class codes.

use std::fmt;
use std::str::FromStr;

use crate::error::WireError;

/// DNS resource record types used by LDplayer.
///
/// Unknown codes are preserved via [`RrType::Unknown`] so traces containing
/// exotic types round-trip unharmed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum RrType {
    A,
    Ns,
    Cname,
    Soa,
    Ptr,
    Mx,
    Txt,
    Aaaa,
    Srv,
    /// EDNS0 pseudo-RR (RFC 6891).
    Opt,
    Ds,
    Rrsig,
    Nsec,
    Dnskey,
    Nsec3,
    /// Any/all records (query-only meta type).
    Any,
    Unknown(u16),
}

impl RrType {
    /// Numeric wire code.
    pub fn code(self) -> u16 {
        match self {
            RrType::A => 1,
            RrType::Ns => 2,
            RrType::Cname => 5,
            RrType::Soa => 6,
            RrType::Ptr => 12,
            RrType::Mx => 15,
            RrType::Txt => 16,
            RrType::Aaaa => 28,
            RrType::Srv => 33,
            RrType::Opt => 41,
            RrType::Ds => 43,
            RrType::Rrsig => 46,
            RrType::Nsec => 47,
            RrType::Dnskey => 48,
            RrType::Nsec3 => 50,
            RrType::Any => 255,
            RrType::Unknown(c) => c,
        }
    }

    /// Decodes a wire code; never fails (unknown codes are preserved).
    pub fn from_code(code: u16) -> Self {
        match code {
            1 => RrType::A,
            2 => RrType::Ns,
            5 => RrType::Cname,
            6 => RrType::Soa,
            12 => RrType::Ptr,
            15 => RrType::Mx,
            16 => RrType::Txt,
            28 => RrType::Aaaa,
            33 => RrType::Srv,
            41 => RrType::Opt,
            43 => RrType::Ds,
            46 => RrType::Rrsig,
            47 => RrType::Nsec,
            48 => RrType::Dnskey,
            50 => RrType::Nsec3,
            255 => RrType::Any,
            c => RrType::Unknown(c),
        }
    }

    /// True for the DNSSEC signature/record types that the DO bit requests.
    pub fn is_dnssec(self) -> bool {
        matches!(
            self,
            RrType::Ds | RrType::Rrsig | RrType::Nsec | RrType::Dnskey | RrType::Nsec3
        )
    }
}

impl fmt::Display for RrType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RrType::A => f.write_str("A"),
            RrType::Ns => f.write_str("NS"),
            RrType::Cname => f.write_str("CNAME"),
            RrType::Soa => f.write_str("SOA"),
            RrType::Ptr => f.write_str("PTR"),
            RrType::Mx => f.write_str("MX"),
            RrType::Txt => f.write_str("TXT"),
            RrType::Aaaa => f.write_str("AAAA"),
            RrType::Srv => f.write_str("SRV"),
            RrType::Opt => f.write_str("OPT"),
            RrType::Ds => f.write_str("DS"),
            RrType::Rrsig => f.write_str("RRSIG"),
            RrType::Nsec => f.write_str("NSEC"),
            RrType::Dnskey => f.write_str("DNSKEY"),
            RrType::Nsec3 => f.write_str("NSEC3"),
            RrType::Any => f.write_str("ANY"),
            RrType::Unknown(c) => write!(f, "TYPE{c}"),
        }
    }
}

impl FromStr for RrType {
    type Err = WireError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let up = s.to_ascii_uppercase();
        Ok(match up.as_str() {
            "A" => RrType::A,
            "NS" => RrType::Ns,
            "CNAME" => RrType::Cname,
            "SOA" => RrType::Soa,
            "PTR" => RrType::Ptr,
            "MX" => RrType::Mx,
            "TXT" => RrType::Txt,
            "AAAA" => RrType::Aaaa,
            "SRV" => RrType::Srv,
            "OPT" => RrType::Opt,
            "DS" => RrType::Ds,
            "RRSIG" => RrType::Rrsig,
            "NSEC" => RrType::Nsec,
            "DNSKEY" => RrType::Dnskey,
            "NSEC3" => RrType::Nsec3,
            "ANY" | "*" => RrType::Any,
            other => {
                if let Some(num) = other.strip_prefix("TYPE") {
                    let code: u16 = num
                        .parse()
                        .map_err(|_| WireError::BadText(format!("bad type {s:?}")))?;
                    RrType::from_code(code)
                } else {
                    return Err(WireError::BadText(format!("unknown RR type {s:?}")));
                }
            }
        })
    }
}

/// DNS class. Effectively always `IN` in modern traffic; `CH` appears for
/// `version.bind`-style diagnostics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum RrClass {
    In,
    Ch,
    Hs,
    None,
    Any,
    Unknown(u16),
}

impl RrClass {
    /// Numeric wire code.
    pub fn code(self) -> u16 {
        match self {
            RrClass::In => 1,
            RrClass::Ch => 3,
            RrClass::Hs => 4,
            RrClass::None => 254,
            RrClass::Any => 255,
            RrClass::Unknown(c) => c,
        }
    }

    /// Decodes a wire code; unknown codes are preserved.
    pub fn from_code(code: u16) -> Self {
        match code {
            1 => RrClass::In,
            3 => RrClass::Ch,
            4 => RrClass::Hs,
            254 => RrClass::None,
            255 => RrClass::Any,
            c => RrClass::Unknown(c),
        }
    }
}

impl fmt::Display for RrClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RrClass::In => f.write_str("IN"),
            RrClass::Ch => f.write_str("CH"),
            RrClass::Hs => f.write_str("HS"),
            RrClass::None => f.write_str("NONE"),
            RrClass::Any => f.write_str("ANY"),
            RrClass::Unknown(c) => write!(f, "CLASS{c}"),
        }
    }
}

impl FromStr for RrClass {
    type Err = WireError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        Ok(match s.to_ascii_uppercase().as_str() {
            "IN" => RrClass::In,
            "CH" => RrClass::Ch,
            "HS" => RrClass::Hs,
            "NONE" => RrClass::None,
            "ANY" => RrClass::Any,
            other => {
                if let Some(num) = other.strip_prefix("CLASS") {
                    let code: u16 = num
                        .parse()
                        .map_err(|_| WireError::BadText(format!("bad class {s:?}")))?;
                    RrClass::from_code(code)
                } else {
                    return Err(WireError::BadText(format!("unknown RR class {s:?}")));
                }
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn type_codes_roundtrip() {
        for code in 0..300u16 {
            assert_eq!(RrType::from_code(code).code(), code);
        }
    }

    #[test]
    fn class_codes_roundtrip() {
        for code in 0..300u16 {
            assert_eq!(RrClass::from_code(code).code(), code);
        }
    }

    #[test]
    fn type_text_roundtrip() {
        for t in [
            RrType::A,
            RrType::Ns,
            RrType::Cname,
            RrType::Soa,
            RrType::Mx,
            RrType::Txt,
            RrType::Aaaa,
            RrType::Srv,
            RrType::Ds,
            RrType::Rrsig,
            RrType::Nsec,
            RrType::Dnskey,
            RrType::Unknown(777),
        ] {
            let text = t.to_string();
            assert_eq!(text.parse::<RrType>().unwrap(), t, "{text}");
        }
        assert_eq!("a".parse::<RrType>().unwrap(), RrType::A);
        assert!("BOGUS".parse::<RrType>().is_err());
        assert!("TYPEabc".parse::<RrType>().is_err());
    }

    #[test]
    fn class_text_roundtrip() {
        for c in [RrClass::In, RrClass::Ch, RrClass::Any, RrClass::Unknown(42)] {
            assert_eq!(c.to_string().parse::<RrClass>().unwrap(), c);
        }
        assert!("XX".parse::<RrClass>().is_err());
    }

    #[test]
    fn dnssec_predicate() {
        assert!(RrType::Rrsig.is_dnssec());
        assert!(RrType::Dnskey.is_dnssec());
        assert!(!RrType::A.is_dnssec());
        assert!(!RrType::Opt.is_dnssec());
    }
}
