//! DNS wire protocol substrate for the LDplayer reproduction.
//!
//! This crate implements the parts of RFC 1035 (plus EDNS0 from RFC 6891 and
//! the DNSSEC record types from RFC 4034) that LDplayer needs to parse,
//! synthesize, mutate, and replay DNS traffic:
//!
//! * [`Name`] — domain names with case-insensitive label semantics,
//! * [`Record`] / [`RData`] — resource records for the common and DNSSEC types,
//! * [`Message`] — full DNS messages with header flags and EDNS0,
//! * a binary codec with DNS name compression ([`Message::to_bytes`] /
//!   [`Message::from_bytes`]),
//! * 2-byte length framing for DNS over TCP/TLS ([`framing`]).
//!
//! The codec is written against byte slices (no I/O) so the same code path is
//! used by the live tokio transports, the discrete-event simulator, and the
//! trace readers.

#![deny(rust_2018_idioms, unsafe_op_in_unsafe_fn, unreachable_pub)]

pub mod edns;
pub mod error;
pub mod framing;
pub mod message;
pub mod name;
pub mod rdata;
pub mod record;
pub mod rr;
mod wirebuf;

pub use edns::{Edns, EdnsOption};
pub use error::WireError;
pub use message::{Header, Message, Opcode, Question, Rcode};
pub use name::Name;
pub use rdata::{RData, SoaData};
pub use record::Record;
pub use rr::{RrClass, RrType};
pub use wirebuf::{WireReader, WireWriter};

/// The conventional maximum size of a DNS message carried over UDP without
/// EDNS0 (RFC 1035 §4.2.1).
pub const MAX_UDP_PAYLOAD: usize = 512;

/// The default EDNS0 advertised UDP payload size used by LDplayer replays.
pub const DEFAULT_EDNS_PAYLOAD: u16 = 4096;

/// Well-known DNS server port.
pub const DNS_PORT: u16 = 53;

/// Well-known DNS-over-TLS port (RFC 7858).
pub const DNS_TLS_PORT: u16 = 853;
