//! EDNS0 (RFC 6891): the OPT pseudo-record.
//!
//! EDNS matters to LDplayer because the DNSSEC what-if experiments (§5.1 of
//! the paper) toggle the DO bit and because the advertised UDP payload size
//! determines whether large signed responses truncate.

use crate::error::WireError;
use crate::name::Name;
use crate::rr::RrType;
use crate::wirebuf::{WireReader, WireWriter};

/// A single EDNS option (code + opaque payload).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct EdnsOption {
    pub code: u16,
    pub data: Vec<u8>,
}

/// Decoded EDNS0 state carried in a message's OPT record.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Edns {
    /// Advertised maximum UDP payload size (the OPT record's CLASS field).
    pub udp_payload_size: u16,
    /// Extended RCODE upper bits (OPT TTL bits 24–31).
    pub extended_rcode: u8,
    /// EDNS version (OPT TTL bits 16–23); always 0 in practice.
    pub version: u8,
    /// DNSSEC OK: the requester wants DNSSEC records (OPT TTL bit 15).
    pub dnssec_ok: bool,
    /// Remaining flag bits (OPT TTL bits 0–14), preserved verbatim.
    pub z_flags: u16,
    pub options: Vec<EdnsOption>,
}

impl Default for Edns {
    fn default() -> Self {
        Edns {
            udp_payload_size: crate::DEFAULT_EDNS_PAYLOAD,
            extended_rcode: 0,
            version: 0,
            dnssec_ok: false,
            z_flags: 0,
            options: Vec::new(),
        }
    }
}

impl Edns {
    /// An EDNS block with the DO bit set, as sent by DNSSEC-aware resolvers.
    pub fn with_do() -> Self {
        Edns {
            dnssec_ok: true,
            ..Edns::default()
        }
    }

    /// Encodes the OPT pseudo-record (owner is always the root name).
    pub fn encode(&self, w: &mut WireWriter) -> Result<(), WireError> {
        w.put_name(&Name::root())?;
        w.put_u16(RrType::Opt.code());
        w.put_u16(self.udp_payload_size);
        let ttl: u32 = (u32::from(self.extended_rcode) << 24)
            | (u32::from(self.version) << 16)
            | (u32::from(self.dnssec_ok) << 15)
            | (u32::from(self.z_flags) & 0x7FFF);
        w.put_u32(ttl);
        let len_at = w.len();
        w.put_u16(0);
        let start = w.len();
        for opt in &self.options {
            w.put_u16(opt.code);
            let opt_len = u16::try_from(opt.data.len())
                .map_err(|_| WireError::MessageTooLong(opt.data.len()))?;
            w.put_u16(opt_len);
            w.put_slice(&opt.data);
        }
        let rdlen = w.len() - start;
        w.patch_u16(
            len_at,
            u16::try_from(rdlen).map_err(|_| WireError::MessageTooLong(rdlen))?,
        );
        Ok(())
    }

    /// Decodes the body of an OPT record whose name/type have already been
    /// consumed. `class_field` and `ttl_field` are the raw CLASS/TTL values.
    pub fn decode_body(
        r: &mut WireReader<'_>,
        class_field: u16,
        ttl_field: u32,
    ) -> Result<Edns, WireError> {
        let rdlen = r.read_u16("opt rdlength")? as usize;
        let end = r.position() + rdlen;
        if r.remaining() < rdlen {
            return Err(WireError::Truncated {
                context: "opt rdata",
            });
        }
        let mut options = Vec::new();
        while r.position() < end {
            let code = r.read_u16("opt option code")?;
            let len = r.read_u16("opt option length")? as usize;
            if r.position() + len > end {
                return Err(WireError::Truncated {
                    context: "opt option data",
                });
            }
            options.push(EdnsOption {
                code,
                data: r.read_bytes(len, "opt option data")?.to_vec(),
            });
        }
        Ok(Edns {
            udp_payload_size: class_field,
            extended_rcode: (ttl_field >> 24) as u8, // ldp-lint: allow(r2) -- high byte of TTL field
            version: (ttl_field >> 16) as u8, // ldp-lint: allow(r2) -- byte 2 of TTL field, truncation intended
            dnssec_ok: (ttl_field >> 15) & 1 == 1,
            z_flags: (ttl_field & 0x7FFF) as u16, // ldp-lint: allow(r2) -- masked to 15 bits
            options,
        })
    }

    /// Wire size of the encoded OPT record.
    pub fn wire_size(&self) -> usize {
        11 + self.options.iter().map(|o| 4 + o.data.len()).sum::<usize>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(e: &Edns) -> Edns {
        let mut w = WireWriter::new();
        e.encode(&mut w).unwrap();
        let bytes = w.into_bytes();
        let mut r = WireReader::new(&bytes);
        // Skip name, type.
        let name = r.read_name().unwrap();
        assert!(name.is_root());
        assert_eq!(r.read_u16("type").unwrap(), RrType::Opt.code());
        let class = r.read_u16("class").unwrap();
        let ttl = r.read_u32("ttl").unwrap();
        Edns::decode_body(&mut r, class, ttl).unwrap()
    }

    #[test]
    fn default_roundtrip() {
        let e = Edns::default();
        assert_eq!(roundtrip(&e), e);
    }

    #[test]
    fn do_bit_roundtrip() {
        let e = Edns::with_do();
        assert!(e.dnssec_ok);
        assert_eq!(roundtrip(&e), e);
    }

    #[test]
    fn options_roundtrip() {
        let e = Edns {
            udp_payload_size: 1232,
            extended_rcode: 1,
            version: 0,
            dnssec_ok: true,
            z_flags: 0,
            options: vec![
                EdnsOption {
                    code: 10, // COOKIE
                    data: vec![1, 2, 3, 4, 5, 6, 7, 8],
                },
                EdnsOption {
                    code: 12, // PADDING
                    data: vec![0; 16],
                },
            ],
        };
        assert_eq!(roundtrip(&e), e);
        assert_eq!(e.wire_size(), 11 + 12 + 20);
    }

    #[test]
    fn truncated_option_rejected() {
        let e = Edns {
            options: vec![EdnsOption {
                code: 10,
                data: vec![1, 2, 3, 4],
            }],
            ..Edns::default()
        };
        let mut w = WireWriter::new();
        e.encode(&mut w).unwrap();
        let mut bytes = w.into_bytes();
        bytes.truncate(bytes.len() - 2);
        let mut r = WireReader::new(&bytes);
        r.read_name().unwrap();
        r.read_u16("type").unwrap();
        let class = r.read_u16("class").unwrap();
        let ttl = r.read_u32("ttl").unwrap();
        assert!(Edns::decode_body(&mut r, class, ttl).is_err());
    }
}
