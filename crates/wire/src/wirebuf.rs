//! Low-level wire buffer reader/writer with DNS name compression.
//!
//! [`WireWriter`] tracks name offsets already emitted and compresses later
//! occurrences with pointers (RFC 1035 §4.1.4). [`WireReader`] resolves
//! pointers with a hop limit to reject loops.

use std::collections::HashMap;
use std::net::{Ipv4Addr, Ipv6Addr};

use crate::error::WireError;
use crate::name::Name;

/// Maximum pointer hops while decompressing one name; real messages need a
/// handful, so this comfortably rejects loops without false positives.
const MAX_POINTER_HOPS: usize = 64;

/// Growable output buffer that records name positions for compression.
#[derive(Debug, Default)]
pub struct WireWriter {
    buf: Vec<u8>,
    /// Map from name suffix (length-prefixed label bytes, already lowercase)
    /// to the offset of its first occurrence. Only offsets < 0x4000 are
    /// usable as pointers.
    name_offsets: HashMap<Vec<u8>, u16>,
    /// When false, names are always written uncompressed (ablation knob and
    /// required inside RRSIG rdata per RFC 4034 §3.1.7).
    compress: bool,
}

impl WireWriter {
    /// New writer with compression enabled.
    pub fn new() -> Self {
        WireWriter {
            buf: Vec::with_capacity(512),
            name_offsets: HashMap::new(),
            compress: true,
        }
    }

    /// New writer with compression disabled.
    pub fn uncompressed() -> Self {
        WireWriter {
            compress: false,
            ..WireWriter::new()
        }
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Consumes the writer, returning the encoded bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Current contents as a slice.
    pub fn as_slice(&self) -> &[u8] {
        &self.buf
    }

    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    pub fn put_u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_be_bytes());
    }

    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_be_bytes());
    }

    pub fn put_slice(&mut self, v: &[u8]) {
        self.buf.extend_from_slice(v);
    }

    pub fn put_ipv4(&mut self, v: Ipv4Addr) {
        self.buf.extend_from_slice(&v.octets());
    }

    pub fn put_ipv6(&mut self, v: Ipv6Addr) {
        self.buf.extend_from_slice(&v.octets());
    }

    /// Overwrites the two bytes at `offset` (used to patch RDLENGTH after
    /// the rdata is written, since compression makes lengths unpredictable).
    pub fn patch_u16(&mut self, offset: usize, v: u16) {
        self.buf[offset..offset + 2].copy_from_slice(&v.to_be_bytes());
    }

    /// Writes a domain name, compressing against previously written names
    /// when enabled.
    pub fn put_name(&mut self, name: &Name) -> Result<(), WireError> {
        let labels: Vec<&[u8]> = name.labels().collect();
        for i in 0..labels.len() {
            // Try to point at an already-written suffix starting at label i.
            if self.compress {
                let suffix = suffix_key(&labels[i..]);
                if let Some(&off) = self.name_offsets.get(&suffix) {
                    self.put_u16(0xC000 | off);
                    return Ok(());
                }
                // Remember this suffix position for future compression; only
                // offsets representable in a 14-bit pointer are usable.
                if let Ok(off) = u16::try_from(self.buf.len()) {
                    if off < 0x4000 {
                        self.name_offsets.insert(suffix, off);
                    }
                }
            }
            let label = labels[i];
            // `Name` guarantees labels ≤ 63 octets; re-check here so a future
            // unvalidated constructor cannot emit a corrupt length octet
            // (values ≥ 64 would decode as pointers or bad label types).
            let len = u8::try_from(label.len())
                .ok()
                .filter(|&l| l <= 63)
                .ok_or(WireError::LabelTooLong(label.len()))?;
            self.put_u8(len);
            self.put_slice(label);
        }
        self.put_u8(0);
        Ok(())
    }
}

fn suffix_key(labels: &[&[u8]]) -> Vec<u8> {
    let mut s = Vec::new();
    for l in labels {
        s.push(l.len() as u8); // ldp-lint: allow(r2) -- key bytes only, labels ≤63 by Name invariant
        s.extend_from_slice(l);
    }
    s
}

/// Cursor over a received message. Keeps the whole message around so
/// compression pointers can be chased.
#[derive(Debug, Clone)]
pub struct WireReader<'a> {
    msg: &'a [u8],
    pos: usize,
}

impl<'a> WireReader<'a> {
    /// New reader positioned at the start of `msg`.
    pub fn new(msg: &'a [u8]) -> Self {
        WireReader { msg, pos: 0 }
    }

    /// Current cursor position.
    pub fn position(&self) -> usize {
        self.pos
    }

    /// Bytes remaining after the cursor.
    pub fn remaining(&self) -> usize {
        self.msg.len().saturating_sub(self.pos)
    }

    /// Moves the cursor to an absolute position.
    pub fn seek(&mut self, pos: usize) -> Result<(), WireError> {
        if pos > self.msg.len() {
            return Err(WireError::Truncated { context: "seek" });
        }
        self.pos = pos;
        Ok(())
    }

    pub fn read_u8(&mut self, context: &'static str) -> Result<u8, WireError> {
        if self.pos >= self.msg.len() {
            return Err(WireError::Truncated { context });
        }
        let v = self.msg[self.pos];
        self.pos += 1;
        Ok(v)
    }

    pub fn read_u16(&mut self, context: &'static str) -> Result<u16, WireError> {
        let b = self.read_bytes(2, context)?;
        Ok(u16::from_be_bytes([b[0], b[1]]))
    }

    pub fn read_u32(&mut self, context: &'static str) -> Result<u32, WireError> {
        let b = self.read_bytes(4, context)?;
        Ok(u32::from_be_bytes([b[0], b[1], b[2], b[3]]))
    }

    pub fn read_bytes(&mut self, n: usize, context: &'static str) -> Result<&'a [u8], WireError> {
        if self.remaining() < n {
            return Err(WireError::Truncated { context });
        }
        let s = &self.msg[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    pub fn read_ipv4(&mut self) -> Result<Ipv4Addr, WireError> {
        let b = self.read_bytes(4, "ipv4")?;
        Ok(Ipv4Addr::new(b[0], b[1], b[2], b[3]))
    }

    pub fn read_ipv6(&mut self) -> Result<Ipv6Addr, WireError> {
        let b = self.read_bytes(16, "ipv6")?;
        let mut o = [0u8; 16];
        o.copy_from_slice(b);
        Ok(Ipv6Addr::from(o))
    }

    /// Reads a (possibly compressed) domain name at the cursor. The cursor
    /// advances past the name's first pointer or terminating root label;
    /// pointer targets are followed without moving the cursor further.
    pub fn read_name(&mut self) -> Result<Name, WireError> {
        let mut labels: Vec<Vec<u8>> = Vec::new();
        let mut pos = self.pos;
        // After the first pointer, the cursor no longer tracks `pos`.
        let mut cursor_done = false;
        let mut hops = 0usize;
        loop {
            if pos >= self.msg.len() {
                return Err(WireError::Truncated { context: "name" });
            }
            let len = self.msg[pos];
            match len & 0xC0 {
                0x00 => {
                    if len == 0 {
                        pos += 1;
                        if !cursor_done {
                            self.pos = pos;
                        }
                        return Name::from_labels(labels);
                    }
                    let start = pos + 1;
                    let end = start + len as usize;
                    if end > self.msg.len() {
                        return Err(WireError::Truncated { context: "label" });
                    }
                    labels.push(self.msg[start..end].to_vec());
                    pos = end;
                }
                0xC0 => {
                    if pos + 1 >= self.msg.len() {
                        return Err(WireError::Truncated { context: "pointer" });
                    }
                    // 14-bit offset: low bits of the length octet, then the
                    // next octet. Assembled as u16 so it can never be lossy.
                    let target = u16::from(len & 0x3F) << 8 | u16::from(self.msg[pos + 1]);
                    // Pointers must point strictly backwards to already-seen
                    // data; forward pointers are malformed and can loop.
                    if usize::from(target) >= pos {
                        return Err(WireError::BadCompressionPointer(target));
                    }
                    hops += 1;
                    if hops > MAX_POINTER_HOPS {
                        return Err(WireError::PointerLoop);
                    }
                    if !cursor_done {
                        self.pos = pos + 2;
                        cursor_done = true;
                    }
                    pos = usize::from(target);
                }
                other => return Err(WireError::BadLabelType(other)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(s: &str) -> Name {
        Name::parse(s).unwrap()
    }

    #[test]
    fn primitive_roundtrip() {
        let mut w = WireWriter::new();
        w.put_u8(7);
        w.put_u16(0xBEEF);
        w.put_u32(0xDEADBEEF);
        w.put_ipv4(Ipv4Addr::new(192, 0, 2, 1));
        let bytes = w.into_bytes();
        let mut r = WireReader::new(&bytes);
        assert_eq!(r.read_u8("t").unwrap(), 7);
        assert_eq!(r.read_u16("t").unwrap(), 0xBEEF);
        assert_eq!(r.read_u32("t").unwrap(), 0xDEADBEEF);
        assert_eq!(r.read_ipv4().unwrap(), Ipv4Addr::new(192, 0, 2, 1));
        assert_eq!(r.remaining(), 0);
        assert!(r.read_u8("end").is_err());
    }

    #[test]
    fn name_roundtrip_uncompressed() {
        let mut w = WireWriter::uncompressed();
        w.put_name(&n("www.example.com")).unwrap();
        w.put_name(&n("example.com")).unwrap();
        let bytes = w.into_bytes();
        // No pointers: 17 + 13 bytes.
        assert_eq!(bytes.len(), 17 + 13);
        let mut r = WireReader::new(&bytes);
        assert_eq!(r.read_name().unwrap(), n("www.example.com"));
        assert_eq!(r.read_name().unwrap(), n("example.com"));
    }

    #[test]
    fn name_compression_reuses_suffix() {
        let mut w = WireWriter::new();
        w.put_name(&n("www.example.com")).unwrap();
        let first_len = w.len();
        w.put_name(&n("example.com")).unwrap();
        // Second name is a single 2-byte pointer.
        assert_eq!(w.len(), first_len + 2);
        w.put_name(&n("ftp.example.com")).unwrap();
        let bytes = w.into_bytes();
        let mut r = WireReader::new(&bytes);
        assert_eq!(r.read_name().unwrap(), n("www.example.com"));
        assert_eq!(r.read_name().unwrap(), n("example.com"));
        assert_eq!(r.read_name().unwrap(), n("ftp.example.com"));
    }

    #[test]
    fn root_name() {
        let mut w = WireWriter::new();
        w.put_name(&Name::root()).unwrap();
        let bytes = w.into_bytes();
        assert_eq!(bytes, vec![0]);
        let mut r = WireReader::new(&bytes);
        assert!(r.read_name().unwrap().is_root());
    }

    #[test]
    fn cursor_lands_after_pointer() {
        let mut w = WireWriter::new();
        w.put_name(&n("a.example")).unwrap();
        w.put_name(&n("a.example")).unwrap();
        w.put_u16(0x1234);
        let bytes = w.into_bytes();
        let mut r = WireReader::new(&bytes);
        r.read_name().unwrap();
        r.read_name().unwrap();
        assert_eq!(r.read_u16("tail").unwrap(), 0x1234);
    }

    #[test]
    fn rejects_forward_pointer() {
        // Pointer to itself.
        let bytes = [0xC0u8, 0x00];
        let mut r = WireReader::new(&bytes);
        assert!(matches!(
            r.read_name(),
            Err(WireError::BadCompressionPointer(_))
        ));
    }

    #[test]
    fn rejects_bad_label_type() {
        let bytes = [0x80u8, 0x00];
        let mut r = WireReader::new(&bytes);
        assert!(matches!(r.read_name(), Err(WireError::BadLabelType(_))));
    }

    #[test]
    fn rejects_truncated_label() {
        let bytes = [5u8, b'a', b'b'];
        let mut r = WireReader::new(&bytes);
        assert!(matches!(r.read_name(), Err(WireError::Truncated { .. })));
    }

    #[test]
    fn rejects_missing_terminator() {
        let bytes = [1u8, b'a'];
        let mut r = WireReader::new(&bytes);
        assert!(matches!(r.read_name(), Err(WireError::Truncated { .. })));
    }

    #[test]
    fn patch_u16_fixes_placeholder() {
        let mut w = WireWriter::new();
        w.put_u16(0);
        let at = 0;
        w.put_slice(b"abc");
        w.patch_u16(at, 3);
        let bytes = w.into_bytes();
        assert_eq!(&bytes[..2], &[0, 3]);
    }
}
