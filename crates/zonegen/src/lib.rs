//! The zone constructor (§2.3 of the paper): rebuild the zones of the DNS
//! hierarchy from captured authoritative responses, so that replays can be
//! answered locally, repeatably, and without leaking traffic to the
//! Internet.
//!
//! The input is the trace captured "at the upstream network interface of
//! the recursive server" while a cold-cache resolver walked the hierarchy
//! once for every unique query. The pipeline mirrors the paper:
//!
//! 1. **Scan** every response and index the structural records: which
//!    names own NS rrsets (zone cuts → zone origins), and the A/AAAA of
//!    every nameserver host.
//! 2. **Aggregate** the remaining records into per-origin intermediate
//!    zones: each record goes to the deepest discovered origin enclosing
//!    its owner; delegation NS/DS records also land in the parent, and
//!    nameserver addresses are copied into the parent as glue.
//! 3. **Split** produces one [`Zone`] per origin, with a synthetic SOA
//!    when none was captured ("Recover Missing Data") and first-answer-wins
//!    conflict resolution ("Handle inconsistent replies").
//! 4. **Bind** each zone to the public addresses of its nameservers,
//!    yielding the input for the split-horizon [`ViewTable`] that the
//!    meta-DNS-server serves.

#![deny(rust_2018_idioms, unsafe_op_in_unsafe_fn, unreachable_pub)]

use std::collections::{HashMap, HashSet};
use std::net::IpAddr;

use ldp_trace::{Direction, TraceRecord};
use ldp_wire::{Message, Name, RData, Record, RrType};
use ldp_zone::{ViewTable, Zone, ZoneError};

/// Statistics from a construction run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BuildStats {
    pub responses_scanned: u64,
    pub records_seen: u64,
    pub records_placed: u64,
    /// Records skipped by first-answer-wins conflict resolution.
    pub conflicts_skipped: u64,
    /// Zones that needed a synthetic SOA.
    pub fake_soas: u64,
    pub zones_built: usize,
}

/// The output of zone construction.
#[derive(Debug)]
pub struct BuiltZones {
    /// One zone per discovered origin.
    pub zones: Vec<Zone>,
    /// (nameserver address, zone origin) pairs.
    pub bindings: Vec<(IpAddr, Name)>,
    pub stats: BuildStats,
}

impl BuiltZones {
    /// Materializes the split-horizon view table for the meta-DNS-server.
    pub fn into_view_table(self) -> ViewTable {
        let mut by_origin: HashMap<Name, Zone> = self
            .zones
            .into_iter()
            .map(|z| (z.origin().clone(), z))
            .collect();
        let mut pairs = Vec::new();
        // A nameserver may serve several zones; clone per binding.
        for (addr, origin) in self.bindings {
            if let Some(zone) = by_origin.get(&origin) {
                pairs.push((addr, zone.clone()));
            }
        }
        // Zones with no discovered address still need to exist somewhere;
        // unreachable zones would break replay, so this is surfaced by
        // `bindings` being checkable upstream. (Drop them here.)
        by_origin.clear();
        ViewTable::from_nameserver_map(pairs)
    }

    /// Serializes every zone as a master file, returning (filename,
    /// contents) pairs — the reusable zone files of §2.3.
    pub fn to_master_files(&self) -> Vec<(String, String)> {
        self.zones
            .iter()
            .map(|z| {
                let stem = if z.origin().is_root() {
                    "root".to_string()
                } else {
                    z.origin()
                        .to_string()
                        .trim_end_matches('.')
                        .replace('.', "_")
                };
                (format!("{stem}.zone"), ldp_zone::master::serialize_zone(z))
            })
            .collect()
    }
}

/// The zone constructor.
#[derive(Debug, Default)]
pub struct ZoneConstructor {
    /// All harvested responses' records, in arrival order.
    harvested: Vec<(usize, IpAddr, Record)>,
    /// Names owning NS rrsets → the NS target names.
    ns_owners: HashMap<Name, HashSet<Name>>,
    /// Nameserver host → addresses.
    ns_addrs: HashMap<Name, HashSet<IpAddr>>,
    /// Whether the root zone was observed (always an origin if so).
    saw_root_soa_or_ns: bool,
    response_count: u64,
    next_response_id: usize,
}

impl ZoneConstructor {
    pub fn new() -> ZoneConstructor {
        ZoneConstructor::default()
    }

    /// Ingests one captured trace record (non-responses are ignored).
    pub fn ingest(&mut self, rec: &TraceRecord) {
        if rec.direction != Direction::Response {
            return;
        }
        self.ingest_response(rec.src, &rec.message);
    }

    /// Ingests a response message served from `server_addr`.
    pub fn ingest_response(&mut self, server_addr: IpAddr, msg: &Message) {
        self.response_count += 1;
        let response_id = self.next_response_id;
        self.next_response_id += 1;
        for record in msg
            .answers
            .iter()
            .chain(msg.authorities.iter())
            .chain(msg.additionals.iter())
        {
            self.index_record(record);
            self.harvested
                .push((response_id, server_addr, record.clone()));
        }
    }

    fn index_record(&mut self, record: &Record) {
        match &record.rdata {
            RData::Ns(target) => {
                if record.name.is_root() {
                    self.saw_root_soa_or_ns = true;
                }
                self.ns_owners
                    .entry(record.name.clone())
                    .or_default()
                    .insert(target.clone());
            }
            RData::Soa(_) if record.name.is_root() => {
                self.saw_root_soa_or_ns = true;
            }
            RData::A(a) => {
                self.note_addr(&record.name, IpAddr::V4(*a));
            }
            RData::Aaaa(a) => {
                self.note_addr(&record.name, IpAddr::V6(*a));
            }
            _ => {}
        }
    }

    fn note_addr(&mut self, name: &Name, addr: IpAddr) {
        self.ns_addrs.entry(name.clone()).or_default().insert(addr);
    }

    /// The set of zone origins: every NS owner, plus the root when seen.
    fn origins(&self) -> HashSet<Name> {
        let mut origins: HashSet<Name> = self.ns_owners.keys().cloned().collect();
        if self.saw_root_soa_or_ns {
            origins.insert(Name::root());
        }
        origins
    }

    /// Deepest origin that is an ancestor of (or equal to) `name`.
    fn owning_origin(origins: &HashSet<Name>, name: &Name) -> Option<Name> {
        let mut keep = name.label_count();
        loop {
            let candidate = name.ancestor(keep)?;
            if origins.contains(&candidate) {
                return Some(candidate);
            }
            if keep == 0 {
                return None;
            }
            keep -= 1;
        }
    }

    /// Runs the split: builds one zone per origin, with first-answer-wins
    /// conflict handling, synthetic SOAs, delegation/glue placement, and
    /// nameserver address binding.
    pub fn build(self) -> BuiltZones {
        let origins = self.origins();
        let mut stats = BuildStats {
            responses_scanned: self.response_count,
            records_seen: self.harvested.len() as u64,
            ..BuildStats::default()
        };

        let mut zones: HashMap<Name, Zone> = origins
            .iter()
            .map(|o| (o.clone(), Zone::new(o.clone())))
            .collect();
        // First-answer-wins: (zone, name, type) → id of the response that
        // owns the rrset. Later responses may not change it.
        let mut first_owner: HashMap<(Name, Name, RrType), usize> = HashMap::new();

        for (response_id, _server, record) in &self.harvested {
            let mut targets: Vec<Name> = Vec::new();
            let Some(primary) = Self::owning_origin(&origins, &record.name) else {
                continue;
            };
            match record.rtype {
                RrType::Ns if origins.contains(&record.name) && !record.name.is_root() => {
                    // Apex NS of a child zone: belongs to the child AND to
                    // the parent as the delegation.
                    targets.push(record.name.clone());
                    if let Some(parent_origin) = record
                        .name
                        .parent()
                        .and_then(|p| Self::owning_origin(&origins, &p))
                    {
                        targets.push(parent_origin);
                    }
                }
                RrType::Ds if origins.contains(&record.name) && !record.name.is_root() => {
                    // DS lives in the parent only.
                    if let Some(parent_origin) = record
                        .name
                        .parent()
                        .and_then(|p| Self::owning_origin(&origins, &p))
                    {
                        targets.push(parent_origin);
                    }
                }
                _ => targets.push(primary),
            }
            // Glue: nameserver addresses also go into every zone that
            // delegates to this host.
            if matches!(record.rtype, RrType::A | RrType::Aaaa) {
                for (owner, ns_set) in &self.ns_owners {
                    if ns_set.contains(&record.name) {
                        // The delegation record for `owner` lives in
                        // owner's parent zone; glue goes there.
                        if let Some(parent_origin) = owner
                            .parent()
                            .and_then(|p| Self::owning_origin(&origins, &p))
                        {
                            if !targets.contains(&parent_origin) {
                                targets.push(parent_origin);
                            }
                        }
                    }
                }
            }
            for target in targets {
                let key = (target.clone(), record.name.clone(), record.rtype);
                match first_owner.get(&key) {
                    Some(owner_id) if owner_id != response_id => {
                        stats.conflicts_skipped += 1;
                        continue;
                    }
                    _ => {
                        first_owner.insert(key, *response_id);
                    }
                }
                let Some(zone) = zones.get_mut(&target) else {
                    continue;
                };
                match zone.add(record.clone()) {
                    Ok(()) => stats.records_placed += 1,
                    Err(ZoneError::CnameConflict(_)) => stats.conflicts_skipped += 1,
                    Err(_) => {}
                }
            }
        }

        // Recover missing data: every zone needs an SOA.
        for zone in zones.values_mut() {
            if zone.soa().is_none() {
                let fake = Zone::with_fake_soa(zone.origin().clone());
                if let Some(soa) = fake.soa_record() {
                    let _ = zone.add(soa);
                    stats.fake_soas += 1;
                }
            }
        }

        // Bind zones to their nameservers' addresses.
        let mut bindings: Vec<(IpAddr, Name)> = Vec::new();
        for (origin, zone) in &zones {
            let ns_targets: Vec<Name> = zone
                .get(origin, RrType::Ns)
                .map(|set| {
                    set.rdatas
                        .iter()
                        .filter_map(|rd| match rd {
                            RData::Ns(t) => Some(t.clone()),
                            _ => None,
                        })
                        .collect()
                })
                .unwrap_or_default();
            let mut bound = false;
            for target in &ns_targets {
                if let Some(addrs) = self.ns_addrs.get(target) {
                    for addr in addrs {
                        bindings.push((*addr, origin.clone()));
                        bound = true;
                    }
                }
            }
            // Fallback: the paper aggregates by response source address;
            // when NS glue never appeared, bind the addresses that actually
            // served this zone's records.
            if !bound {
                let served_by: HashSet<IpAddr> = self
                    .harvested
                    .iter()
                    .filter(|(_, _, r)| {
                        Self::owning_origin(&origins, &r.name).as_ref() == Some(origin)
                    })
                    .map(|(_, server, _)| *server)
                    .collect();
                for addr in served_by {
                    bindings.push((addr, origin.clone()));
                }
            }
        }
        bindings.sort_by_key(|a| (a.0, a.1.to_string()));
        bindings.dedup();

        stats.zones_built = zones.len();
        BuiltZones {
            zones: zones.into_values().collect(),
            bindings,
            stats,
        }
    }
}

/// Convenience: rebuild zones from a whole trace in one call.
pub fn build_from_trace(records: &[TraceRecord]) -> BuiltZones {
    build_from_traces(std::iter::once(records))
}

/// Rebuilds zones from several traces merged into one hierarchy — the
/// paper's "optionally we can also merge the intermediate zone files of
/// multiple traces" (§2.3). First-answer-wins conflict resolution applies
/// across traces in iteration order, so the earliest capture provides the
/// canonical data.
pub fn build_from_traces<'a, I>(traces: I) -> BuiltZones
where
    I: IntoIterator<Item = &'a [TraceRecord]>,
{
    let mut c = ZoneConstructor::new();
    for records in traces {
        for r in records {
            c.ingest(r);
        }
    }
    c.build()
}

/// Rebuilds the single zone behind an *authoritative* trace (§2.3's
/// "straightforward" case): every answered record belongs to `origin`.
pub fn build_single_zone(origin: &Name, records: &[TraceRecord]) -> Zone {
    let mut zone = Zone::with_fake_soa(origin.clone());
    for rec in records {
        if rec.direction != Direction::Response {
            continue;
        }
        for record in rec
            .message
            .answers
            .iter()
            .chain(rec.message.authorities.iter())
            .chain(rec.message.additionals.iter())
        {
            let _ = zone.add(record.clone());
        }
    }
    zone
}

#[cfg(test)]
mod tests {
    use super::*;
    use ldp_wire::{Rcode, RrType};

    fn n(s: &str) -> Name {
        Name::parse(s).unwrap()
    }

    fn ip(s: &str) -> IpAddr {
        s.parse().unwrap()
    }

    /// Hand-rolls the three responses a cold-cache walk of
    /// www.example.com produces, then rebuilds zones from them.
    fn harvest_walk() -> ZoneConstructor {
        let mut c = ZoneConstructor::new();

        // Root's referral to com.
        let mut from_root = Message::default();
        from_root.header.response = true;
        from_root.questions = vec![ldp_wire::Question::new(n("www.example.com"), RrType::A)];
        from_root.authorities.push(Record::new(
            n("com"),
            172800,
            RData::Ns(n("a.gtld-servers.net")),
        ));
        from_root.additionals.push(Record::new(
            n("a.gtld-servers.net"),
            172800,
            RData::A("192.5.6.30".parse().unwrap()),
        ));
        // Root apex NS so the root zone is discovered as an origin.
        from_root.authorities.push(Record::new(
            Name::root(),
            518400,
            RData::Ns(n("a.root-servers.net")),
        ));
        from_root.additionals.push(Record::new(
            n("a.root-servers.net"),
            518400,
            RData::A("198.41.0.4".parse().unwrap()),
        ));
        c.ingest_response(ip("198.41.0.4"), &from_root);

        // com's referral to example.com.
        let mut from_com = Message::default();
        from_com.header.response = true;
        from_com.authorities.push(Record::new(
            n("example.com"),
            172800,
            RData::Ns(n("ns1.example.com")),
        ));
        from_com.additionals.push(Record::new(
            n("ns1.example.com"),
            172800,
            RData::A("192.0.2.53".parse().unwrap()),
        ));
        c.ingest_response(ip("192.5.6.30"), &from_com);

        // example.com's answer.
        let mut from_sld = Message::default();
        from_sld.header.response = true;
        from_sld.header.authoritative = true;
        from_sld.answers.push(Record::new(
            n("www.example.com"),
            300,
            RData::A("192.0.2.80".parse().unwrap()),
        ));
        from_sld.authorities.push(Record::new(
            n("example.com"),
            3600,
            RData::Ns(n("ns1.example.com")),
        ));
        c.ingest_response(ip("192.0.2.53"), &from_sld);

        c
    }

    #[test]
    fn origins_discovered() {
        let built = harvest_walk().build();
        let mut origins: Vec<String> = built.zones.iter().map(|z| z.origin().to_string()).collect();
        origins.sort();
        assert_eq!(origins, vec![".", "com.", "example.com."]);
        assert_eq!(built.stats.zones_built, 3);
        assert_eq!(built.stats.responses_scanned, 3);
    }

    #[test]
    fn every_zone_has_soa() {
        let built = harvest_walk().build();
        for z in &built.zones {
            assert!(z.validate().is_ok(), "zone {} missing SOA", z.origin());
        }
        assert_eq!(built.stats.fake_soas, 3, "no SOAs were captured");
    }

    #[test]
    fn delegations_and_glue_in_parent() {
        let built = harvest_walk().build();
        let root = built.zones.iter().find(|z| z.origin().is_root()).unwrap();
        assert!(
            root.get(&n("com"), RrType::Ns).is_some(),
            "root delegates com"
        );
        assert!(
            root.get(&n("a.gtld-servers.net"), RrType::A).is_some(),
            "glue for com's NS in the root zone"
        );
        let com = built
            .zones
            .iter()
            .find(|z| z.origin() == &n("com"))
            .unwrap();
        assert!(com.get(&n("example.com"), RrType::Ns).is_some());
        assert!(com.get(&n("ns1.example.com"), RrType::A).is_some());
    }

    #[test]
    fn bindings_map_ns_addresses_to_zones() {
        let built = harvest_walk().build();
        let find = |addr: &str| -> Vec<String> {
            built
                .bindings
                .iter()
                .filter(|(a, _)| *a == ip(addr))
                .map(|(_, o)| o.to_string())
                .collect()
        };
        assert_eq!(find("198.41.0.4"), vec!["."]);
        assert_eq!(find("192.5.6.30"), vec!["com."]);
        assert_eq!(find("192.0.2.53"), vec!["example.com."]);
    }

    #[test]
    fn rebuilt_hierarchy_answers_like_the_original() {
        // The §2.3 closing property: replaying the harvested queries
        // against the rebuilt hierarchy gives the same answers.
        use ldp_server::auth::AuthEngine;
        let built = harvest_walk().build();
        let table = built.into_view_table();
        let engine = AuthEngine::with_views(table);
        let q = Message::query(1, n("www.example.com"), RrType::A);

        let root_resp = engine.respond(ip("198.41.0.4"), &q, false);
        assert!(root_resp.answers.is_empty());
        assert_eq!(
            root_resp
                .authorities
                .iter()
                .filter(|r| r.name == n("com"))
                .count(),
            1
        );

        let sld_resp = engine.respond(ip("192.0.2.53"), &q, false);
        assert_eq!(sld_resp.header.rcode, Rcode::NoError);
        assert_eq!(sld_resp.answers.len(), 1);
        assert_eq!(
            sld_resp.answers[0].rdata,
            RData::A("192.0.2.80".parse().unwrap())
        );
    }

    #[test]
    fn first_answer_wins_on_conflicts() {
        let mut c = harvest_walk();
        // A second, different answer for www.example.com (CDN flap).
        let mut flap = Message::default();
        flap.header.response = true;
        flap.answers.push(Record::new(
            n("www.example.com"),
            300,
            RData::A("203.0.113.9".parse().unwrap()),
        ));
        c.ingest_response(ip("192.0.2.53"), &flap);
        let built = c.build();
        assert!(built.stats.conflicts_skipped >= 1);
        let sld = built
            .zones
            .iter()
            .find(|z| z.origin() == &n("example.com"))
            .unwrap();
        let set = sld.get(&n("www.example.com"), RrType::A).unwrap();
        assert_eq!(
            set.rdatas,
            vec![RData::A("192.0.2.80".parse().unwrap())],
            "first answer kept"
        );
    }

    #[test]
    fn queries_are_ignored() {
        let mut c = ZoneConstructor::new();
        let rec = TraceRecord::udp_query(0, ip("10.0.0.1"), 1234, n("x.test"), RrType::A);
        c.ingest(&rec);
        let built = c.build();
        assert_eq!(built.stats.responses_scanned, 0);
        assert!(built.zones.is_empty());
    }

    #[test]
    fn single_zone_reconstruction() {
        let mut resp =
            TraceRecord::udp_query(0, ip("192.0.2.53"), 53, n("www.example.com"), RrType::A);
        resp.direction = Direction::Response;
        resp.message.header.response = true;
        resp.message.answers.push(Record::new(
            n("www.example.com"),
            300,
            RData::A("192.0.2.80".parse().unwrap()),
        ));
        let zone = build_single_zone(&n("example.com"), &[resp]);
        assert!(zone.validate().is_ok());
        assert!(zone.get(&n("www.example.com"), RrType::A).is_some());
    }

    #[test]
    fn merging_multiple_traces_unions_zones() {
        // Trace A covers .com; trace B covers .org; the merged build must
        // produce one hierarchy answering both, with the root zone's data
        // deduplicated across traces.
        let mk_response = |tld: &str, ns_addr: &str| {
            let mut m = Message::default();
            m.header.response = true;
            m.authorities.push(Record::new(
                n(tld),
                172800,
                RData::Ns(n(&format!("ns.{tld}"))),
            ));
            m.additionals.push(Record::new(
                n(&format!("ns.{tld}")),
                172800,
                RData::A(ns_addr.parse().unwrap()),
            ));
            m.authorities.push(Record::new(
                Name::root(),
                518400,
                RData::Ns(n("a.root-servers.net")),
            ));
            m.additionals.push(Record::new(
                n("a.root-servers.net"),
                518400,
                RData::A("198.41.0.4".parse().unwrap()),
            ));
            m
        };
        let mut rec_a = TraceRecord::udp_query(0, ip("198.41.0.4"), 53, n("x.com"), RrType::A);
        rec_a.direction = Direction::Response;
        rec_a.message = mk_response("com", "192.5.6.30");
        let mut rec_b = rec_a.clone();
        rec_b.message = mk_response("org", "199.19.56.1");

        let built = build_from_traces([std::slice::from_ref(&rec_a), std::slice::from_ref(&rec_b)]);
        let root = built.zones.iter().find(|z| z.origin().is_root()).unwrap();
        assert!(root.get(&n("com"), RrType::Ns).is_some());
        assert!(root.get(&n("org"), RrType::Ns).is_some());
        // The shared root NS appears once despite arriving in both traces.
        assert_eq!(root.get(&Name::root(), RrType::Ns).unwrap().rdatas.len(), 1);
    }

    #[test]
    fn master_file_export_roundtrips() {
        let built = harvest_walk().build();
        let files = built.to_master_files();
        assert_eq!(files.len(), 3);
        for (name, text) in &files {
            let origin = match name.as_str() {
                "root.zone" => Name::root(),
                "com.zone" => n("com"),
                "example_com.zone" => n("example.com"),
                other => panic!("unexpected file {other}"),
            };
            let parsed = ldp_zone::master::parse_zone(&origin, text).unwrap();
            assert!(parsed.validate().is_ok());
        }
    }
}
