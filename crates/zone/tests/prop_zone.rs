//! Property tests for zone machinery: canonical-order laws, master-file
//! round-trips over richer record mixes, and NSEC chain coverage.

use ldp_wire::{Name, RData, Record, RrType};
use ldp_zone::dnssec::{sign_zone, SigningConfig};
use ldp_zone::{master, LookupOutcome, Zone};
use proptest::prelude::*;

fn arb_label() -> impl Strategy<Value = String> {
    proptest::collection::vec(
        prop_oneof![Just('a'), Just('b'), Just('c'), Just('z'), Just('1')],
        1..6,
    )
    .prop_map(|cs| cs.into_iter().collect())
}

fn arb_name_under(origin: &'static str) -> impl Strategy<Value = Name> {
    proptest::collection::vec(arb_label(), 0..3).prop_map(move |labels| {
        let mut s = labels.join(".");
        if !s.is_empty() {
            s.push('.');
        }
        s.push_str(origin);
        Name::parse(&s).unwrap()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Canonical ordering is a strict total order consistent with equality.
    #[test]
    fn canonical_order_total(
        a in arb_name_under("test"),
        b in arb_name_under("test"),
        c in arb_name_under("test"),
    ) {
        use std::cmp::Ordering;
        prop_assert_eq!(a.canonical_cmp(&a), Ordering::Equal);
        prop_assert_eq!(a.canonical_cmp(&b), b.canonical_cmp(&a).reverse());
        // Transitivity on a ≤ b ≤ c.
        if a.canonical_cmp(&b) != Ordering::Greater && b.canonical_cmp(&c) != Ordering::Greater {
            prop_assert!(a.canonical_cmp(&c) != Ordering::Greater);
        }
        prop_assert_eq!(a.canonical_cmp(&b) == Ordering::Equal, a == b);
    }

    /// Master round-trip over mixed record types preserves every rrset.
    #[test]
    fn master_roundtrip_mixed(
        names in proptest::collection::vec(arb_name_under("rt.test"), 1..15),
        ttls in proptest::collection::vec(1u32..100_000, 15),
    ) {
        let origin = Name::parse("rt.test").unwrap();
        let mut zone = Zone::with_fake_soa(origin.clone());
        for (i, name) in names.iter().enumerate() {
            let ttl = ttls[i % ttls.len()];
            let rdata = match i % 5 {
                0 => RData::A(std::net::Ipv4Addr::from(i as u32 + 1)),
                1 => RData::Aaaa(std::net::Ipv6Addr::from((i as u128) + 1)),
                2 => RData::Txt(vec![format!("txt-{i}").into_bytes()]),
                3 => RData::Mx { preference: i as u16, exchange: origin.clone() },
                _ => RData::Ptr(origin.clone()),
            };
            let _ = zone.add(Record::new(name.clone(), ttl, rdata));
        }
        let text = master::serialize_zone(&zone);
        let zone2 = master::parse_zone(&origin, &text).unwrap();
        prop_assert_eq!(zone.record_count(), zone2.record_count());
        for (name, rtype, set) in zone.iter() {
            let set2 = zone2.get(name, rtype);
            prop_assert!(set2.is_some(), "{} {} lost in round-trip", name, rtype);
            let set2 = set2.unwrap();
            prop_assert_eq!(set.ttl, set2.ttl);
            prop_assert_eq!(set.rdatas.len(), set2.rdatas.len());
        }
    }

    /// After signing, *every* negative lookup with DO carries denial
    /// records, and every positive rrset has a covering signature.
    #[test]
    fn signed_zone_denial_total(
        names in proptest::collection::vec(arb_name_under("sz.test"), 1..12),
        probe in arb_name_under("sz.test"),
    ) {
        let origin = Name::parse("sz.test").unwrap();
        let mut zone = Zone::with_fake_soa(origin.clone());
        for (i, name) in names.iter().enumerate() {
            let _ = zone.add(Record::new(
                name.clone(),
                300,
                RData::A(std::net::Ipv4Addr::from(i as u32 + 1)),
            ));
        }
        sign_zone(&mut zone, SigningConfig::zsk2048());
        match zone.lookup(&probe, RrType::A, true) {
            LookupOutcome::Answer { records, .. } => {
                let has_sig = records.iter().any(|r| r.rtype == RrType::Rrsig);
                prop_assert!(has_sig, "answer for {probe} lacks RRSIG");
            }
            LookupOutcome::NxDomain { denial, .. } | LookupOutcome::NoData { denial, .. } => {
                let has_nsec = denial.iter().any(|r| r.rtype == RrType::Nsec);
                let has_sig = denial.iter().any(|r| r.rtype == RrType::Rrsig);
                prop_assert!(has_nsec && has_sig, "negative answer for {probe} lacks denial");
            }
            LookupOutcome::Delegation(_) | LookupOutcome::OutOfZone => {}
        }
    }
}
