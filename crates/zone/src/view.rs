//! Split-horizon views (§2.4 of the paper).
//!
//! The meta-DNS-server hosts every zone of the hierarchy behind a single
//! address. The only signal identifying which *level* of the hierarchy a
//! query was aimed at is the original query destination address (OQDA),
//! which the recursive proxy moves into the packet's *source* field. The
//! view table therefore maps **query source addresses** (= nameserver
//! public addresses from the reconstructed zones) to the zone each
//! nameserver serves — exactly BIND's `view`/`match-clients` mechanism that
//! the paper relies on.

use std::collections::HashMap;
use std::net::IpAddr;
use std::sync::Arc;

use ldp_wire::{Name, RrType};

use crate::lookup::LookupOutcome;
use crate::zone::Zone;
use crate::zoneset::ZoneSet;

/// How a view matches incoming queries.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum ViewSelector {
    /// Matches a single client (post-proxy: nameserver) address.
    Address(IpAddr),
    /// Matches anything; used as the final fallback view.
    Any,
}

/// One view: a selector and the zones visible through it.
#[derive(Debug, Clone)]
struct View {
    zones: Arc<ZoneSet>,
}

/// Ordered table of split-horizon views.
///
/// Address-specific views are consulted first; the optional `Any` view is
/// the fallback. In LDplayer's usage every nameserver address of every
/// reconstructed zone gets an address view pointing at that zone.
#[derive(Debug, Clone, Default)]
pub struct ViewTable {
    by_address: HashMap<IpAddr, View>,
    fallback: Option<View>,
}

impl ViewTable {
    pub fn new() -> ViewTable {
        ViewTable::default()
    }

    /// Binds `addr` to a set of zones (a nameserver may serve several).
    pub fn add_address_view(&mut self, addr: IpAddr, zones: Arc<ZoneSet>) {
        self.by_address.insert(addr, View { zones });
    }

    /// Sets the fallback view used when no address matches.
    pub fn set_fallback(&mut self, zones: Arc<ZoneSet>) {
        self.fallback = Some(View { zones });
    }

    /// Number of address-specific views.
    pub fn address_view_count(&self) -> usize {
        self.by_address.len()
    }

    /// Selects the zone set visible to a query whose (post-proxy) source
    /// address is `client`.
    pub fn select(&self, client: IpAddr) -> Option<&Arc<ZoneSet>> {
        self.by_address
            .get(&client)
            .or(self.fallback.as_ref())
            .map(|v| &v.zones)
    }

    /// Full split-horizon lookup: pick the view for `client`, then the best
    /// zone within it, then run the authoritative lookup.
    pub fn lookup(
        &self,
        client: IpAddr,
        qname: &Name,
        qtype: RrType,
        dnssec_ok: bool,
    ) -> Option<(Arc<Zone>, LookupOutcome)> {
        let (zone, outcome) = self.select(client)?.lookup(qname, qtype, dnssec_ok)?;
        // Referral consistency: a delegation handed out by this view must
        // point at a cut inside the serving zone, with the qname under the
        // cut — otherwise the meta-server would send resolvers sideways out
        // of the hierarchy the view table encodes (§2.4).
        #[cfg(debug_assertions)]
        if let LookupOutcome::Delegation(r) = &outcome {
            debug_assert!(
                r.cut.is_subdomain_of(zone.origin()) && r.cut != *zone.origin(),
                "delegation cut {} not strictly below zone {}",
                r.cut,
                zone.origin()
            );
            debug_assert!(
                qname.is_subdomain_of(&r.cut),
                "qname {qname} not under delegation cut {}",
                r.cut
            );
        }
        Some((zone, outcome))
    }

    /// Builds a view table from (nameserver address → zone) pairs, the
    /// shape the zone constructor emits: every nameserver address becomes a
    /// view exposing exactly the zones that nameserver serves.
    pub fn from_nameserver_map(map: Vec<(IpAddr, Zone)>) -> ViewTable {
        let mut grouped: HashMap<IpAddr, ZoneSet> = HashMap::new();
        for (addr, zone) in map {
            grouped.entry(addr).or_default().insert(zone);
        }
        let mut table = ViewTable::new();
        for (addr, set) in grouped {
            table.add_address_view(addr, Arc::new(set));
        }
        table
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ldp_wire::{RData, Record};

    fn n(s: &str) -> Name {
        Name::parse(s).unwrap()
    }

    fn ip(s: &str) -> IpAddr {
        s.parse().unwrap()
    }

    /// The paper's key scenario: the same qname asked "of" different
    /// hierarchy levels must produce different answers — referral from the
    /// root view, referral from com view, final answer from example view.
    fn hierarchy_table() -> ViewTable {
        let root_addr = ip("198.41.0.4"); // a.root-servers.net
        let com_addr = ip("192.5.6.30"); // a.gtld-servers.net
        let sld_addr = ip("192.0.2.53"); // ns1.example.com

        let mut root = Zone::with_fake_soa(Name::root());
        root.add(Record::new(
            n("com"),
            172800,
            RData::Ns(n("a.gtld-servers.net")),
        ))
        .unwrap();
        root.add(Record::new(
            n("a.gtld-servers.net"),
            172800,
            RData::A("192.5.6.30".parse().unwrap()),
        ))
        .unwrap();

        let mut com = Zone::with_fake_soa(n("com"));
        com.add(Record::new(
            n("example.com"),
            172800,
            RData::Ns(n("ns1.example.com")),
        ))
        .unwrap();
        com.add(Record::new(
            n("ns1.example.com"),
            172800,
            RData::A("192.0.2.53".parse().unwrap()),
        ))
        .unwrap();

        let mut sld = Zone::with_fake_soa(n("example.com"));
        sld.add(Record::new(
            n("www.example.com"),
            300,
            RData::A("192.0.2.80".parse().unwrap()),
        ))
        .unwrap();

        ViewTable::from_nameserver_map(vec![(root_addr, root), (com_addr, com), (sld_addr, sld)])
    }

    #[test]
    fn same_query_different_views_different_answers() {
        let table = hierarchy_table();
        let q = n("www.example.com");

        let (_, from_root) = table
            .lookup(ip("198.41.0.4"), &q, RrType::A, false)
            .unwrap();
        match from_root {
            LookupOutcome::Delegation(r) => assert_eq!(r.cut, n("com")),
            other => panic!("root view should refer to com, got {other:?}"),
        }

        let (_, from_com) = table
            .lookup(ip("192.5.6.30"), &q, RrType::A, false)
            .unwrap();
        match from_com {
            LookupOutcome::Delegation(r) => assert_eq!(r.cut, n("example.com")),
            other => panic!("com view should refer to example.com, got {other:?}"),
        }

        let (_, from_sld) = table
            .lookup(ip("192.0.2.53"), &q, RrType::A, false)
            .unwrap();
        assert!(matches!(from_sld, LookupOutcome::Answer { .. }));
    }

    #[test]
    fn unknown_address_without_fallback() {
        let table = hierarchy_table();
        assert!(table.select(ip("10.9.9.9")).is_none());
    }

    #[test]
    fn fallback_view() {
        let mut table = hierarchy_table();
        let mut set = ZoneSet::new();
        set.insert(Zone::with_fake_soa(n("fallback.test")));
        table.set_fallback(Arc::new(set));
        let zones = table.select(ip("10.9.9.9")).unwrap();
        assert_eq!(zones.len(), 1);
    }

    #[test]
    fn one_address_serving_multiple_zones() {
        // A single nameserver host that serves two zones (common for
        // hosting providers): both must be visible through one view.
        let addr = ip("192.0.2.1");
        let za = Zone::with_fake_soa(n("a.test"));
        let zb = Zone::with_fake_soa(n("b.test"));
        let table = ViewTable::from_nameserver_map(vec![(addr, za), (addr, zb)]);
        assert_eq!(table.address_view_count(), 1);
        let set = table.select(addr).unwrap();
        assert_eq!(set.len(), 2);
        assert!(set.find_zone(&n("x.a.test")).is_some());
        assert!(set.find_zone(&n("x.b.test")).is_some());
    }
}
