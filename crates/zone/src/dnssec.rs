//! Synthetic DNSSEC signing for the §5.1 what-if experiments.
//!
//! The paper replays root traffic under different zone-signing-key (ZSK)
//! sizes (1024/2048-bit, plus rollover states where two keys and double
//! signatures are live) and different DO-bit shares, and measures response
//! bandwidth. Real cryptography is irrelevant to that question — only the
//! *sizes* of DNSKEY and RRSIG records matter — so this module signs zones
//! with structurally-valid records whose key and signature lengths model an
//! RSA key of the configured size. This is the documented substitution for
//! the paper's use of the real (signed) root zone.

use ldp_wire::{Name, RData, Record, RrType};

use crate::zone::Zone;

/// Key configuration for the synthetic signer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SigningConfig {
    /// ZSK modulus size in bits; an RSA signature is modulus-sized, so
    /// RRSIGs carry `zsk_bits/8` signature bytes.
    pub zsk_bits: u16,
    /// KSK modulus size in bits (the root uses 2048-bit KSKs).
    pub ksk_bits: u16,
    /// During a ZSK rollover both the outgoing and incoming ZSK are
    /// published and every rrset carries two signatures, which is what
    /// makes rollovers a bandwidth event (Fig. 10's "rollover" groups).
    pub rollover: bool,
}

impl SigningConfig {
    /// Pre-2016 root configuration: 1024-bit ZSK.
    pub fn zsk1024() -> Self {
        SigningConfig {
            zsk_bits: 1024,
            ksk_bits: 2048,
            rollover: false,
        }
    }

    /// Current root configuration: 2048-bit ZSK.
    pub fn zsk2048() -> Self {
        SigningConfig {
            zsk_bits: 2048,
            ksk_bits: 2048,
            rollover: false,
        }
    }

    /// The paper's stated future-work configuration (§5.1): 4096-bit ZSK.
    pub fn zsk4096() -> Self {
        SigningConfig {
            zsk_bits: 4096,
            ksk_bits: 2048,
            rollover: false,
        }
    }

    /// Same, but mid-rollover (two ZSKs, double signatures).
    pub fn rollover(mut self) -> Self {
        self.rollover = true;
        self
    }

    /// Signature size in bytes for one RRSIG.
    pub fn signature_len(&self) -> usize {
        self.zsk_bits as usize / 8
    }

    /// Number of live ZSKs.
    pub fn zsk_count(&self) -> usize {
        if self.rollover {
            2
        } else {
            1
        }
    }
}

/// RSA algorithm number 8 (RSASHA256), what the root uses.
const ALG_RSASHA256: u8 = 8;
/// DNSKEY flags: ZSK = 256, KSK = 257 (SEP bit).
const FLAGS_ZSK: u16 = 256;
const FLAGS_KSK: u16 = 257;

/// Signs `zone` in place: publishes DNSKEYs at the apex and attaches one
/// RRSIG per (name, type) rrset per live ZSK. Existing DNSSEC records are
/// replaced, so re-signing with a different config is idempotent.
pub fn sign_zone(zone: &mut Zone, config: SigningConfig) {
    zone.remove_type(RrType::Rrsig);
    zone.remove_type(RrType::Dnskey);
    zone.remove_type(RrType::Nsec);

    let apex = zone.origin().clone();
    // Publish the KSK and the live ZSK(s). Key material is deterministic
    // filler; its *length* models an RSA public key of the configured size
    // (modulus + small exponent/ASN.1 overhead ≈ bits/8 + 4).
    let mut key_tags: Vec<u16> = Vec::new();
    let mut keys: Vec<Record> = Vec::new();
    keys.push(dnskey(&apex, FLAGS_KSK, config.ksk_bits, 19036));
    for i in 0..config.zsk_count() {
        let tag = 40000 + i as u16;
        key_tags.push(tag);
        keys.push(dnskey(&apex, FLAGS_ZSK, config.zsk_bits, tag));
    }

    // Collect the rrsets to sign first (can't mutate while iterating).
    let mut to_sign: Vec<(Name, RrType, u32)> = zone
        .iter()
        .map(|(name, rtype, set)| (name.clone(), rtype, set.ttl))
        .collect();
    // Delegation NS rrsets are not signed by the child-side signer (the
    // parent signs the DS instead) — matches real signed zones, where
    // referral responses carry DS+RRSIG but the NS set itself is unsigned.
    to_sign.retain(|(name, rtype, _)| !(*rtype == RrType::Ns && name != &apex));

    for k in keys {
        zone.add(k).expect("apex DNSKEY is in zone");
    }
    // Sign the DNSKEY rrset with the KSK as real zones do.
    let dnskey_ttl = zone
        .get(&apex, RrType::Dnskey)
        .map(|s| s.ttl)
        .unwrap_or(3600);
    let ksk_sig = rrsig(
        &apex,
        RrType::Dnskey,
        dnskey_ttl,
        19036,
        &apex,
        config.ksk_bits as usize / 8,
    );
    zone.add(ksk_sig).expect("apex RRSIG is in zone");

    for (name, rtype, ttl) in to_sign {
        for &tag in &key_tags {
            let sig = rrsig(&name, rtype, ttl, tag, &apex, config.signature_len());
            zone.add(sig).expect("signature owner already in zone");
        }
    }

    // Authenticated denial: an NSEC chain over the authoritative names
    // (delegation-only names are skipped like unsigned NS sets), each link
    // signed per live ZSK. Negative responses attach the covering link
    // (RFC 4035 §3.1.3) — the records that make signed NXDOMAINs large.
    let negative_ttl = zone.soa().map(|s| s.minimum).unwrap_or(300);
    let mut chain: Vec<Name> = zone
        .iter()
        .map(|(name, _, _)| name.clone())
        .collect::<std::collections::HashSet<_>>()
        .into_iter()
        .collect();
    chain.sort_by(|a, b| a.canonical_cmp(b));
    chain.dedup();
    let links: Vec<(Name, Name)> = chain
        .iter()
        .enumerate()
        .map(|(i, name)| (name.clone(), chain[(i + 1) % chain.len()].clone()))
        .collect();
    for (owner, next) in links {
        let nsec = Record::with_type(
            owner.clone(),
            RrType::Nsec,
            negative_ttl,
            RData::Nsec {
                next,
                // Fixed-size synthetic type bitmap (real root bitmaps run
                // ~10–30 bytes).
                type_bitmaps: vec![0x00, 0x07, 0x62, 0x01, 0x80, 0x08, 0x00, 0x02, 0x90],
            },
        );
        zone.add(nsec).expect("nsec owner exists");
        for &tag in &key_tags {
            let sig = rrsig(
                &owner,
                RrType::Nsec,
                negative_ttl,
                tag,
                &apex,
                config.signature_len(),
            );
            zone.add(sig).expect("nsec signature owner exists");
        }
    }
    zone.set_nsec_order(chain);
}

fn dnskey(apex: &Name, flags: u16, bits: u16, seed: u16) -> Record {
    let len = bits as usize / 8 + 4;
    let key = pseudo_bytes(len, seed as u64);
    Record::with_type(
        apex.clone(),
        RrType::Dnskey,
        3600,
        RData::Dnskey {
            flags,
            protocol: 3,
            algorithm: ALG_RSASHA256,
            public_key: key,
        },
    )
}

fn rrsig(
    name: &Name,
    covered: RrType,
    ttl: u32,
    key_tag: u16,
    signer: &Name,
    sig_len: usize,
) -> Record {
    Record::with_type(
        name.clone(),
        RrType::Rrsig,
        ttl,
        RData::Rrsig {
            type_covered: covered,
            algorithm: ALG_RSASHA256,
            labels: name.label_count() as u8,
            original_ttl: ttl,
            // Fixed validity window keeps signing deterministic across runs
            // (experiment repeatability, §2.1 of the paper).
            expiration: 1_800_000_000,
            inception: 1_700_000_000,
            key_tag,
            signer: signer.clone(),
            signature: pseudo_bytes(sig_len, key_tag as u64 ^ ttl as u64),
        },
    )
}

/// Deterministic filler bytes (xorshift) so repeated runs produce identical
/// zones.
fn pseudo_bytes(len: usize, seed: u64) -> Vec<u8> {
    let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
    let mut out = Vec::with_capacity(len);
    while out.len() < len {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        out.extend_from_slice(&state.to_le_bytes());
    }
    out.truncate(len);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lookup::LookupOutcome;
    use ldp_wire::Record as WireRecord;

    fn n(s: &str) -> Name {
        Name::parse(s).unwrap()
    }

    fn root_like_zone() -> Zone {
        let mut z = Zone::with_fake_soa(Name::root());
        z.add(WireRecord::new(
            Name::root(),
            518400,
            RData::Ns(n("a.root-servers.net")),
        ))
        .unwrap();
        z.add(WireRecord::new(
            n("a.root-servers.net"),
            518400,
            RData::A("198.41.0.4".parse().unwrap()),
        ))
        .unwrap();
        z.add(WireRecord::new(
            n("com"),
            172800,
            RData::Ns(n("a.gtld-servers.net")),
        ))
        .unwrap();
        z.add(WireRecord::new(
            n("com"),
            86400,
            RData::Ds {
                key_tag: 1,
                algorithm: 8,
                digest_type: 2,
                digest: vec![7; 32],
            },
        ))
        .unwrap();
        z
    }

    #[test]
    fn signing_adds_keys_and_sigs() {
        let mut z = root_like_zone();
        sign_zone(&mut z, SigningConfig::zsk2048());
        let keys = z.get(&Name::root(), RrType::Dnskey).unwrap();
        assert_eq!(keys.rdatas.len(), 2, "KSK + ZSK");
        assert!(z.get(&Name::root(), RrType::Rrsig).is_some());
        // DS at the delegation is signed (that's what referrals carry).
        assert!(z.get(&n("com"), RrType::Rrsig).is_some());
    }

    #[test]
    fn rollover_doubles_zsk_and_signatures() {
        let mut single = root_like_zone();
        sign_zone(&mut single, SigningConfig::zsk2048());
        let mut rolled = root_like_zone();
        sign_zone(&mut rolled, SigningConfig::zsk2048().rollover());

        let keys_single = single
            .get(&Name::root(), RrType::Dnskey)
            .unwrap()
            .rdatas
            .len();
        let keys_rolled = rolled
            .get(&Name::root(), RrType::Dnskey)
            .unwrap()
            .rdatas
            .len();
        assert_eq!(keys_rolled, keys_single + 1);

        let sigs_single = single
            .get(&Name::root(), RrType::Soa)
            .map(|_| ())
            .and(single.get(&Name::root(), RrType::Rrsig))
            .unwrap()
            .rdatas
            .len();
        let sigs_rolled = rolled
            .get(&Name::root(), RrType::Rrsig)
            .unwrap()
            .rdatas
            .len();
        assert!(sigs_rolled > sigs_single, "{sigs_rolled} !> {sigs_single}");
    }

    #[test]
    fn signature_sizes_track_zsk_bits() {
        let mut z1024 = root_like_zone();
        sign_zone(&mut z1024, SigningConfig::zsk1024());
        let mut z2048 = root_like_zone();
        sign_zone(&mut z2048, SigningConfig::zsk2048());

        let sig_len = |z: &Zone| -> usize {
            match &z.get(&n("com"), RrType::Rrsig).unwrap().rdatas[0] {
                RData::Rrsig { signature, .. } => signature.len(),
                _ => unreachable!(),
            }
        };
        assert_eq!(sig_len(&z1024), 128);
        assert_eq!(sig_len(&z2048), 256);
        let mut z4096 = root_like_zone();
        sign_zone(&mut z4096, SigningConfig::zsk4096());
        assert_eq!(sig_len(&z4096), 512);
    }

    #[test]
    fn resigning_is_idempotent() {
        let mut z = root_like_zone();
        sign_zone(&mut z, SigningConfig::zsk2048().rollover());
        let count_rolled = z.record_count();
        sign_zone(&mut z, SigningConfig::zsk2048());
        sign_zone(&mut z, SigningConfig::zsk2048());
        let mut fresh = root_like_zone();
        sign_zone(&mut fresh, SigningConfig::zsk2048());
        assert_eq!(z.record_count(), fresh.record_count());
        assert!(count_rolled > z.record_count());
    }

    #[test]
    fn signed_referral_is_bigger_with_do() {
        let mut z = root_like_zone();
        sign_zone(&mut z, SigningConfig::zsk2048());
        let plain = match z.lookup(&n("www.example.com"), RrType::A, false) {
            LookupOutcome::Delegation(r) => r,
            other => panic!("{other:?}"),
        };
        let signed = match z.lookup(&n("www.example.com"), RrType::A, true) {
            LookupOutcome::Delegation(r) => r,
            other => panic!("{other:?}"),
        };
        assert!(plain.ds_records.is_empty());
        assert_eq!(signed.ds_records.len(), 2, "DS + RRSIG(DS)");
        let extra: usize = signed
            .ds_records
            .iter()
            .map(|r| r.wire_size_estimate())
            .sum();
        assert!(
            extra > 256,
            "signed referral must grow by at least a signature"
        );
    }

    #[test]
    fn pseudo_bytes_deterministic() {
        assert_eq!(pseudo_bytes(64, 7), pseudo_bytes(64, 7));
        assert_ne!(pseudo_bytes(64, 7), pseudo_bytes(64, 8));
        assert_eq!(pseudo_bytes(13, 3).len(), 13);
    }
}
