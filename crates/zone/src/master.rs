//! Zone master-file format (RFC 1035 §5): parser and serializer.
//!
//! The zone constructor (§2.3 of the paper) materializes reconstructed
//! zones as master files so they can be saved, inspected, edited, and
//! reloaded across experiments ("we save the recreated zones for reuse").
//!
//! Supported syntax: `$ORIGIN`, `$TTL`, `@`, relative names, inherited
//! owner (leading whitespace), parenthesized record continuation (as used
//! by SOA), comments, quoted TXT strings, and `\# len hex` unknown rdata.

use std::net::{Ipv4Addr, Ipv6Addr};

use ldp_wire::{Name, RData, Record, RrClass, RrType, SoaData};

use crate::zone::{Zone, ZoneError};

/// Parses a master file into a [`Zone`] rooted at `origin` (overridable by
/// `$ORIGIN` inside the file).
pub fn parse_zone(origin: &Name, text: &str) -> Result<Zone, ZoneError> {
    let mut parser = Parser {
        origin: origin.clone(),
        default_ttl: 3600,
        last_owner: None,
        zone: Zone::new(origin.clone()),
    };
    for (lineno, logical) in logical_lines(text) {
        parser.parse_line(lineno, &logical)?;
    }
    Ok(parser.zone)
}

/// Serializes a zone to master-file text (round-trips through
/// [`parse_zone`]).
pub fn serialize_zone(zone: &Zone) -> String {
    let mut out = String::new();
    out.push_str(&format!("$ORIGIN {}\n", zone.origin()));
    // SOA first, then everything else sorted for stable output.
    if let Some(soa) = zone.soa_record() {
        out.push_str(&soa.to_string());
        out.push('\n');
    }
    let mut lines: Vec<String> = Vec::new();
    for (name, rtype, set) in zone.iter() {
        if rtype == RrType::Soa && name == zone.origin() {
            continue;
        }
        for rec in set.to_records(name, rtype) {
            lines.push(rec.to_string());
        }
    }
    lines.sort();
    for l in lines {
        out.push_str(&l);
        out.push('\n');
    }
    out
}

/// Joins parenthesized continuations and strips comments, yielding
/// (first-line-number, logical line) pairs.
fn logical_lines(text: &str) -> Vec<(usize, String)> {
    let mut out = Vec::new();
    let mut depth = 0usize;
    let mut current = String::new();
    let mut start_line = 0usize;
    for (i, raw) in text.lines().enumerate() {
        let stripped = strip_comment_and_count_parens(raw, &mut depth);
        if current.is_empty() {
            start_line = i + 1;
            current = stripped;
        } else {
            current.push(' ');
            current.push_str(&stripped);
        }
        if depth == 0 {
            if !current.trim().is_empty() {
                out.push((start_line, std::mem::take(&mut current)));
            } else {
                current.clear();
            }
        }
    }
    if !current.trim().is_empty() {
        out.push((start_line, current));
    }
    out
}

/// Removes `;` comments (respecting quoted strings) and replaces
/// parentheses with spaces while tracking nesting depth.
fn strip_comment_and_count_parens(line: &str, depth: &mut usize) -> String {
    let mut out = String::with_capacity(line.len());
    let mut in_quote = false;
    let mut escape = false;
    for c in line.chars() {
        if escape {
            out.push(c);
            escape = false;
            continue;
        }
        match c {
            '\\' => {
                out.push(c);
                escape = true;
            }
            '"' => {
                in_quote = !in_quote;
                out.push(c);
            }
            ';' if !in_quote => break,
            '(' if !in_quote => {
                *depth += 1;
                out.push(' ');
            }
            ')' if !in_quote => {
                *depth = depth.saturating_sub(1);
                out.push(' ');
            }
            _ => out.push(c),
        }
    }
    out
}

struct Parser {
    origin: Name,
    default_ttl: u32,
    last_owner: Option<Name>,
    zone: Zone,
}

impl Parser {
    fn err(&self, line: usize, reason: impl Into<String>) -> ZoneError {
        ZoneError::Parse {
            line,
            reason: reason.into(),
        }
    }

    fn resolve_name(&self, line: usize, token: &str) -> Result<Name, ZoneError> {
        if token == "@" {
            return Ok(self.origin.clone());
        }
        if token.ends_with('.') && !token.ends_with("\\.") {
            return Name::parse(token).map_err(|e| self.err(line, e.to_string()));
        }
        // Relative name: append origin.
        let left = Name::parse(token).map_err(|e| self.err(line, e.to_string()))?;
        left.concat(&self.origin)
            .map_err(|e| self.err(line, e.to_string()))
    }

    fn parse_line(&mut self, line: usize, text: &str) -> Result<(), ZoneError> {
        let leading_ws = text.starts_with(' ') || text.starts_with('\t');
        let tokens = tokenize(text);
        if tokens.is_empty() {
            return Ok(());
        }
        if tokens[0] == "$ORIGIN" {
            let name = tokens
                .get(1)
                .ok_or_else(|| self.err(line, "$ORIGIN needs a name"))?;
            self.origin = Name::parse(name).map_err(|e| self.err(line, e.to_string()))?;
            return Ok(());
        }
        if tokens[0] == "$TTL" {
            let ttl = tokens
                .get(1)
                .ok_or_else(|| self.err(line, "$TTL needs a value"))?;
            self.default_ttl = parse_ttl(ttl).ok_or_else(|| self.err(line, "bad $TTL"))?;
            return Ok(());
        }
        if tokens[0].starts_with('$') {
            return Err(self.err(line, format!("unsupported directive {}", tokens[0])));
        }

        let mut idx = 0;
        let owner = if leading_ws {
            self.last_owner
                .clone()
                .ok_or_else(|| self.err(line, "record without owner"))?
        } else {
            let o = self.resolve_name(line, &tokens[0])?;
            idx = 1;
            o
        };
        self.last_owner = Some(owner.clone());

        // [TTL] [class] type — TTL and class may appear in either order.
        let mut ttl = self.default_ttl;
        let mut class = RrClass::In;
        let rtype = loop {
            let tok = tokens
                .get(idx)
                .ok_or_else(|| self.err(line, "missing record type"))?;
            if let Some(v) = parse_ttl(tok) {
                ttl = v;
                idx += 1;
                continue;
            }
            if let Ok(c) = tok.parse::<RrClass>() {
                // Careful: "A" parses as neither class nor ttl; "IN" parses
                // as class. Types that also look like classes don't exist.
                class = c;
                idx += 1;
                continue;
            }
            break tok
                .parse::<RrType>()
                .map_err(|e| self.err(line, e.to_string()))?;
        };
        idx += 1;
        let rdata_tokens = &tokens[idx..];
        let rdata = self.parse_rdata(line, rtype, rdata_tokens)?;
        self.zone
            .add(Record {
                name: owner,
                rtype,
                class,
                ttl,
                rdata,
            })
            .map_err(|e| match e {
                ZoneError::Parse { .. } => e,
                other => self.err(line, other.to_string()),
            })
    }

    fn parse_rdata(&self, line: usize, rtype: RrType, toks: &[String]) -> Result<RData, ZoneError> {
        let need = |n: usize| -> Result<(), ZoneError> {
            if toks.len() < n {
                Err(self.err(line, format!("{rtype} rdata needs {n} fields")))
            } else {
                Ok(())
            }
        };
        // Unknown-format rdata: `\# <len> <hex>` (RFC 3597).
        if toks.first().map(String::as_str) == Some("\\#") {
            need(2)?;
            let len: usize = toks[1]
                .parse()
                .map_err(|_| self.err(line, "bad \\# length"))?;
            let hexstr: String = toks[2..].concat();
            let raw = parse_hex(&hexstr).ok_or_else(|| self.err(line, "bad hex"))?;
            if raw.len() != len {
                return Err(self.err(line, "\\# length mismatch"));
            }
            return Ok(RData::Unknown(raw));
        }
        Ok(match rtype {
            RrType::A => {
                need(1)?;
                RData::A(
                    toks[0]
                        .parse::<Ipv4Addr>()
                        .map_err(|_| self.err(line, "bad A address"))?,
                )
            }
            RrType::Aaaa => {
                need(1)?;
                RData::Aaaa(
                    toks[0]
                        .parse::<Ipv6Addr>()
                        .map_err(|_| self.err(line, "bad AAAA address"))?,
                )
            }
            RrType::Ns => {
                need(1)?;
                RData::Ns(self.resolve_name(line, &toks[0])?)
            }
            RrType::Cname => {
                need(1)?;
                RData::Cname(self.resolve_name(line, &toks[0])?)
            }
            RrType::Ptr => {
                need(1)?;
                RData::Ptr(self.resolve_name(line, &toks[0])?)
            }
            RrType::Soa => {
                need(7)?;
                let nums: Vec<u32> = toks[2..7]
                    .iter()
                    .map(|t| parse_ttl(t).ok_or_else(|| self.err(line, "bad SOA number")))
                    .collect::<Result<_, _>>()?;
                RData::Soa(SoaData {
                    mname: self.resolve_name(line, &toks[0])?,
                    rname: self.resolve_name(line, &toks[1])?,
                    serial: nums[0],
                    refresh: nums[1],
                    retry: nums[2],
                    expire: nums[3],
                    minimum: nums[4],
                })
            }
            RrType::Mx => {
                need(2)?;
                RData::Mx {
                    preference: toks[0]
                        .parse()
                        .map_err(|_| self.err(line, "bad MX preference"))?,
                    exchange: self.resolve_name(line, &toks[1])?,
                }
            }
            RrType::Txt => {
                need(1)?;
                let strings = toks
                    .iter()
                    .map(|t| unquote_txt(t))
                    .collect::<Option<Vec<_>>>()
                    .ok_or_else(|| self.err(line, "bad TXT string"))?;
                RData::Txt(strings)
            }
            RrType::Srv => {
                need(4)?;
                RData::Srv {
                    priority: toks[0]
                        .parse()
                        .map_err(|_| self.err(line, "bad SRV priority"))?,
                    weight: toks[1]
                        .parse()
                        .map_err(|_| self.err(line, "bad SRV weight"))?,
                    port: toks[2]
                        .parse()
                        .map_err(|_| self.err(line, "bad SRV port"))?,
                    target: self.resolve_name(line, &toks[3])?,
                }
            }
            RrType::Dnskey => {
                need(4)?;
                RData::Dnskey {
                    flags: toks[0]
                        .parse()
                        .map_err(|_| self.err(line, "bad DNSKEY flags"))?,
                    protocol: toks[1]
                        .parse()
                        .map_err(|_| self.err(line, "bad DNSKEY protocol"))?,
                    algorithm: toks[2]
                        .parse()
                        .map_err(|_| self.err(line, "bad DNSKEY algorithm"))?,
                    public_key: parse_hex(&toks[3..].concat())
                        .ok_or_else(|| self.err(line, "bad DNSKEY key hex"))?,
                }
            }
            RrType::Rrsig => {
                need(9)?;
                RData::Rrsig {
                    type_covered: toks[0]
                        .parse::<RrType>()
                        .map_err(|e| self.err(line, e.to_string()))?,
                    algorithm: toks[1]
                        .parse()
                        .map_err(|_| self.err(line, "bad RRSIG algorithm"))?,
                    labels: toks[2]
                        .parse()
                        .map_err(|_| self.err(line, "bad RRSIG labels"))?,
                    original_ttl: parse_ttl(&toks[3])
                        .ok_or_else(|| self.err(line, "bad RRSIG ttl"))?,
                    expiration: parse_ttl(&toks[4])
                        .ok_or_else(|| self.err(line, "bad RRSIG expiration"))?,
                    inception: parse_ttl(&toks[5])
                        .ok_or_else(|| self.err(line, "bad RRSIG inception"))?,
                    key_tag: toks[6]
                        .parse()
                        .map_err(|_| self.err(line, "bad RRSIG key tag"))?,
                    signer: self.resolve_name(line, &toks[7])?,
                    signature: parse_hex(&toks[8..].concat())
                        .ok_or_else(|| self.err(line, "bad RRSIG signature hex"))?,
                }
            }
            RrType::Ds => {
                need(4)?;
                RData::Ds {
                    key_tag: toks[0]
                        .parse()
                        .map_err(|_| self.err(line, "bad DS key tag"))?,
                    algorithm: toks[1]
                        .parse()
                        .map_err(|_| self.err(line, "bad DS algorithm"))?,
                    digest_type: toks[2]
                        .parse()
                        .map_err(|_| self.err(line, "bad DS digest type"))?,
                    digest: parse_hex(&toks[3..].concat())
                        .ok_or_else(|| self.err(line, "bad DS digest hex"))?,
                }
            }
            RrType::Nsec => {
                need(2)?;
                RData::Nsec {
                    next: self.resolve_name(line, &toks[0])?,
                    type_bitmaps: parse_hex(&toks[1..].concat())
                        .ok_or_else(|| self.err(line, "bad NSEC bitmap hex"))?,
                }
            }
            other => {
                return Err(self.err(
                    line,
                    format!("type {other} requires \\# unknown-format rdata"),
                ))
            }
        })
    }
}

/// Splits on whitespace, keeping quoted strings (with escapes) whole.
fn tokenize(line: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut cur = String::new();
    let mut in_quote = false;
    let mut escape = false;
    for c in line.chars() {
        if escape {
            cur.push(c);
            escape = false;
            continue;
        }
        match c {
            '\\' => {
                cur.push(c);
                escape = true;
            }
            '"' => {
                in_quote = !in_quote;
                cur.push(c);
            }
            c if c.is_whitespace() && !in_quote => {
                if !cur.is_empty() {
                    out.push(std::mem::take(&mut cur));
                }
            }
            _ => cur.push(c),
        }
    }
    if !cur.is_empty() {
        out.push(cur);
    }
    out
}

/// Parses a TTL: plain seconds or with `s`/`m`/`h`/`d`/`w` units
/// (e.g. `1h30m`).
pub fn parse_ttl(s: &str) -> Option<u32> {
    if s.is_empty() {
        return None;
    }
    if s.chars().all(|c| c.is_ascii_digit()) {
        return s.parse().ok();
    }
    let mut total: u64 = 0;
    let mut num: u64 = 0;
    let mut saw_digit = false;
    for c in s.chars() {
        if let Some(d) = c.to_digit(10) {
            num = num * 10 + d as u64;
            saw_digit = true;
        } else {
            if !saw_digit {
                return None;
            }
            let mult: u64 = match c.to_ascii_lowercase() {
                's' => 1,
                'm' => 60,
                'h' => 3600,
                'd' => 86400,
                'w' => 604800,
                _ => return None,
            };
            total += num * mult;
            num = 0;
            saw_digit = false;
        }
    }
    if saw_digit {
        total += num;
    }
    u32::try_from(total).ok()
}

fn parse_hex(s: &str) -> Option<Vec<u8>> {
    if !s.len().is_multiple_of(2) {
        return None;
    }
    (0..s.len())
        .step_by(2)
        .map(|i| u8::from_str_radix(&s[i..i + 2], 16).ok())
        .collect()
}

/// Removes surrounding quotes and resolves `\"`/`\\`/`\ddd` escapes.
fn unquote_txt(tok: &str) -> Option<Vec<u8>> {
    let inner = tok.strip_prefix('"')?.strip_suffix('"')?;
    let bytes = inner.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i] == b'\\' {
            if i + 1 >= bytes.len() {
                return None;
            }
            if bytes[i + 1].is_ascii_digit() {
                if i + 3 >= bytes.len() {
                    return None;
                }
                let v = (bytes[i + 1] - b'0') as u32 * 100
                    + (bytes[i + 2] - b'0') as u32 * 10
                    + (bytes[i + 3] - b'0') as u32;
                out.push(u8::try_from(v).ok()?);
                i += 4;
            } else {
                out.push(bytes[i + 1]);
                i += 2;
            }
        } else {
            out.push(bytes[i]);
            i += 1;
        }
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(s: &str) -> Name {
        Name::parse(s).unwrap()
    }

    const EXAMPLE: &str = r#"
$ORIGIN example.com.
$TTL 3600
@   IN SOA ns1 hostmaster ( 2024010101 7200
                            3600 1209600 300 ) ; SOA with continuation
@       IN NS  ns1
@       IN NS  ns2.example.com.
ns1     IN A   192.0.2.53
ns2     300 IN A 192.0.2.54
www     IN A   192.0.2.80
        IN AAAA 2001:db8::80 ; inherited owner
alias   IN CNAME www
mail    IN MX 10 mx1.example.com.
txt     IN TXT "hello world" "second string"
_sip._tcp IN SRV 0 5 5060 sip
sub     IN NS ns1.sub
ns1.sub IN A 192.0.2.99
odd     IN TYPE999 \# 4 0a0b0c0d
"#;

    #[test]
    fn parse_full_zone() {
        let z = parse_zone(&n("example.com"), EXAMPLE).unwrap();
        assert!(z.validate().is_ok());
        let soa = z.soa().unwrap();
        assert_eq!(soa.serial, 2024010101);
        assert_eq!(soa.mname, n("ns1.example.com"));
        assert_eq!(
            z.get(&n("example.com"), RrType::Ns).unwrap().rdatas.len(),
            2
        );
        assert_eq!(
            z.get(&n("ns2.example.com"), RrType::A).unwrap().ttl,
            300,
            "explicit TTL overrides $TTL"
        );
        assert_eq!(z.get(&n("ns1.example.com"), RrType::A).unwrap().ttl, 3600);
        // Inherited owner: AAAA attaches to www.
        assert!(z.get(&n("www.example.com"), RrType::Aaaa).is_some());
        // Sub-delegation registered as a cut.
        assert_eq!(
            z.deepest_cut(&n("x.sub.example.com")).unwrap(),
            &n("sub.example.com")
        );
        // Unknown type preserved.
        assert_eq!(
            z.get(&n("odd.example.com"), RrType::Unknown(999))
                .unwrap()
                .rdatas[0],
            RData::Unknown(vec![0x0a, 0x0b, 0x0c, 0x0d])
        );
    }

    #[test]
    fn txt_strings() {
        let z = parse_zone(&n("example.com"), EXAMPLE).unwrap();
        match &z.get(&n("txt.example.com"), RrType::Txt).unwrap().rdatas[0] {
            RData::Txt(strings) => {
                assert_eq!(strings[0], b"hello world");
                assert_eq!(strings[1], b"second string");
            }
            other => panic!("expected TXT, got {other:?}"),
        }
    }

    #[test]
    fn roundtrip_serialize_parse() {
        let z = parse_zone(&n("example.com"), EXAMPLE).unwrap();
        let text = serialize_zone(&z);
        let z2 = parse_zone(&n("example.com"), &text).unwrap();
        assert_eq!(z.record_count(), z2.record_count());
        for (name, rtype, set) in z.iter() {
            let set2 = z2
                .get(name, rtype)
                .unwrap_or_else(|| panic!("{name} {rtype} lost"));
            assert_eq!(set.ttl, set2.ttl, "{name} {rtype}");
            let mut a = set.rdatas.clone();
            let mut b = set2.rdatas.clone();
            a.sort_by_key(|r| format!("{r}"));
            b.sort_by_key(|r| format!("{r}"));
            assert_eq!(a, b, "{name} {rtype}");
        }
    }

    #[test]
    fn ttl_units() {
        assert_eq!(parse_ttl("300"), Some(300));
        assert_eq!(parse_ttl("1h"), Some(3600));
        assert_eq!(parse_ttl("1h30m"), Some(5400));
        assert_eq!(parse_ttl("2d"), Some(172800));
        assert_eq!(parse_ttl("1w"), Some(604800));
        assert_eq!(parse_ttl(""), None);
        assert_eq!(parse_ttl("h"), None);
        assert_eq!(parse_ttl("12x"), None);
    }

    #[test]
    fn parse_errors_carry_line_numbers() {
        let bad = "$ORIGIN example.com.\n@ IN SOA ns1 host 1 2 3 4 5\nwww IN A not-an-address\n";
        match parse_zone(&n("example.com"), bad) {
            Err(ZoneError::Parse { line, .. }) => assert_eq!(line, 3),
            other => panic!("expected parse error, got {other:?}"),
        }
    }

    #[test]
    fn out_of_zone_record_rejected() {
        let bad =
            "$ORIGIN example.com.\n@ IN SOA ns1 host 1 2 3 4 5\nexample.net. IN A 192.0.2.1\n";
        assert!(parse_zone(&n("example.com"), bad).is_err());
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let text =
            "; leading comment\n\n$ORIGIN t.\n@ IN SOA ns h 1 2 3 4 5 ; trailing\n\n; done\n";
        let z = parse_zone(&n("t"), text).unwrap();
        assert!(z.soa().is_some());
    }

    #[test]
    fn semicolon_inside_quotes_kept() {
        let text = "$ORIGIN t.\n@ IN SOA ns h 1 2 3 4 5\nx IN TXT \"a;b\"\n";
        let z = parse_zone(&n("t"), text).unwrap();
        match &z.get(&n("x.t"), RrType::Txt).unwrap().rdatas[0] {
            RData::Txt(s) => assert_eq!(s[0], b"a;b"),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn dnssec_records_roundtrip() {
        let text = "$ORIGIN s.\n@ IN SOA ns h 1 2 3 4 5\n\
@ IN DNSKEY 256 3 8 aabbcc\n\
@ IN RRSIG SOA 8 1 3600 100 50 7 s. ddeeff\n\
@ IN DS 7 8 2 0011\n\
@ IN NSEC a.s. 000101\n";
        let z = parse_zone(&n("s"), text).unwrap();
        let text2 = serialize_zone(&z);
        let z2 = parse_zone(&n("s"), &text2).unwrap();
        assert_eq!(z.record_count(), z2.record_count());
        assert!(z2.get(&n("s"), RrType::Dnskey).is_some());
        assert!(z2.get(&n("s"), RrType::Rrsig).is_some());
    }
}
