//! The [`Zone`] container: records of a single zone plus the structural
//! indexes lookup needs (existing names, delegation cuts).

use std::collections::{BTreeMap, HashMap, HashSet};
use std::fmt;

use ldp_wire::{Name, RData, Record, RrType, SoaData};

/// Errors when constructing or mutating zones.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ZoneError {
    /// Record owner is not at or below the zone origin.
    OutOfZone { origin: Name, name: Name },
    /// A zone must have exactly one SOA at its apex.
    MissingSoa(Name),
    /// Adding a second CNAME (or CNAME plus other data) at one name.
    CnameConflict(Name),
    /// Parse error from a master file, with line number.
    Parse { line: usize, reason: String },
}

impl fmt::Display for ZoneError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ZoneError::OutOfZone { origin, name } => {
                write!(f, "record {name} is outside zone {origin}")
            }
            ZoneError::MissingSoa(origin) => write!(f, "zone {origin} has no SOA at apex"),
            ZoneError::CnameConflict(name) => {
                write!(f, "CNAME at {name} conflicts with other data")
            }
            ZoneError::Parse { line, reason } => write!(f, "parse error at line {line}: {reason}"),
        }
    }
}

impl std::error::Error for ZoneError {}

/// All records sharing one (name, type): a single TTL and one or more rdatas.
///
/// DNS semantics treat an RRset as the atomic unit of responses and signing
/// (RFC 2181 §5), so the zone stores RRsets rather than loose records.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct RrSet {
    pub ttl: u32,
    pub rdatas: Vec<RData>,
}

impl RrSet {
    /// Materializes wire records for this rrset.
    pub fn to_records(&self, name: &Name, rtype: RrType) -> Vec<Record> {
        self.rdatas
            .iter()
            .map(|rd| Record {
                name: name.clone(),
                rtype,
                class: ldp_wire::RrClass::In,
                ttl: self.ttl,
                rdata: rd.clone(),
            })
            .collect()
    }
}

/// A single authoritative zone.
///
/// Records are indexed by owner name, then by type. The structural indexes —
/// `existing_names` (including empty non-terminals) and `cuts` (delegation
/// points, i.e. names strictly below the apex owning NS rrsets) — are
/// maintained incrementally so lookup is cheap.
#[derive(Debug, Clone)]
pub struct Zone {
    origin: Name,
    /// name → type → rrset. BTreeMap over names keeps canonical-ish order
    /// for iteration/serialization stability.
    records: BTreeMap<Name, HashMap<RrType, RrSet>>,
    /// Every name that "exists" per RFC 4592, including empty non-terminals
    /// synthesized between a record owner and the apex.
    existing_names: HashSet<Name>,
    /// Delegation points: names strictly below the apex that own NS rrsets.
    cuts: HashSet<Name>,
    /// NSEC chain owners in canonical order (RFC 4034 §6.1), set by the
    /// signing pass; empty for unsigned zones.
    nsec_order: Vec<Name>,
}

impl Zone {
    /// Creates an empty zone rooted at `origin`.
    pub fn new(origin: Name) -> Zone {
        let mut existing_names = HashSet::new();
        existing_names.insert(origin.clone());
        Zone {
            origin,
            records: BTreeMap::new(),
            existing_names,
            cuts: HashSet::new(),
            nsec_order: Vec::new(),
        }
    }

    /// Creates a zone with a synthetic but valid SOA, as the zone
    /// constructor does when the trace never revealed one (§2.3 "Recover
    /// Missing Data").
    pub fn with_fake_soa(origin: Name) -> Zone {
        let mut z = Zone::new(origin.clone());
        let soa = RData::Soa(SoaData {
            mname: Name::parse("ns.fake")
                .unwrap()
                .concat(&origin)
                .unwrap_or_else(|_| origin.clone()),
            rname: Name::parse("hostmaster.fake").unwrap(),
            serial: 1,
            refresh: 7200,
            retry: 3600,
            expire: 1209600,
            minimum: 300,
        });
        z.add(Record::new(origin, 3600, soa))
            .expect("apex SOA is in zone");
        z
    }

    /// The zone's apex name.
    pub fn origin(&self) -> &Name {
        &self.origin
    }

    /// Adds one record. Owner must be at or below the origin. Records with
    /// the same (name, type) merge into one rrset keeping the first TTL;
    /// duplicate rdata is ignored (idempotent adds).
    pub fn add(&mut self, record: Record) -> Result<(), ZoneError> {
        if !record.name.is_subdomain_of(&self.origin) {
            return Err(ZoneError::OutOfZone {
                origin: self.origin.clone(),
                name: record.name,
            });
        }
        // CNAME exclusivity (RFC 2181 §10.1): a CNAME owner may carry
        // DNSSEC metadata but no other data types.
        let existing = self.records.get(&record.name);
        if record.rtype == RrType::Cname {
            if let Some(types) = existing {
                let conflicting = types
                    .keys()
                    .any(|t| !matches!(t, RrType::Cname | RrType::Rrsig | RrType::Nsec));
                if conflicting {
                    return Err(ZoneError::CnameConflict(record.name));
                }
                if let Some(cname_set) = types.get(&RrType::Cname) {
                    if !cname_set.rdatas.is_empty() && !cname_set.rdatas.contains(&record.rdata) {
                        // Second, different CNAME at the same name.
                        return Err(ZoneError::CnameConflict(record.name));
                    }
                }
            }
        } else if !record.rtype.is_dnssec() {
            if let Some(types) = existing {
                if types.contains_key(&RrType::Cname) {
                    return Err(ZoneError::CnameConflict(record.name));
                }
            }
        }

        // Track delegation cuts.
        if record.rtype == RrType::Ns && record.name != self.origin {
            self.cuts.insert(record.name.clone());
        }

        // Record the owner and all empty non-terminals up to the apex.
        let mut walk = record.name.clone();
        while walk != self.origin {
            if !self.existing_names.insert(walk.clone()) {
                break;
            }
            walk = walk.parent().expect("walk is below origin");
        }

        let set = self
            .records
            .entry(record.name)
            .or_default()
            .entry(record.rtype)
            .or_default();
        if set.rdatas.is_empty() {
            set.ttl = record.ttl;
        }
        if !set.rdatas.contains(&record.rdata) {
            set.rdatas.push(record.rdata);
        }
        Ok(())
    }

    /// Looks up the rrset at exactly (name, rtype).
    pub fn get(&self, name: &Name, rtype: RrType) -> Option<&RrSet> {
        self.records.get(name)?.get(&rtype)
    }

    /// All rrsets at a name.
    pub fn get_all(&self, name: &Name) -> Option<&HashMap<RrType, RrSet>> {
        self.records.get(name)
    }

    /// True when the name exists in the zone (has records, is an empty
    /// non-terminal, or is the apex).
    pub fn name_exists(&self, name: &Name) -> bool {
        self.existing_names.contains(name)
    }

    /// The apex SOA rdata, if present.
    pub fn soa(&self) -> Option<&SoaData> {
        match self.get(&self.origin, RrType::Soa)?.rdatas.first()? {
            RData::Soa(soa) => Some(soa),
            _ => None,
        }
    }

    /// The apex SOA as a full record.
    pub fn soa_record(&self) -> Option<Record> {
        let set = self.get(&self.origin, RrType::Soa)?;
        set.to_records(&self.origin, RrType::Soa).into_iter().next()
    }

    /// Validates zone invariants: apex SOA present.
    pub fn validate(&self) -> Result<(), ZoneError> {
        if self.soa().is_none() {
            return Err(ZoneError::MissingSoa(self.origin.clone()));
        }
        Ok(())
    }

    /// Finds the deepest delegation cut at-or-above `name` but strictly
    /// below the apex. Data *at* the cut name itself other than NS/DS also
    /// lives below the cut in a real hierarchy, so the cut applies when
    /// `name` is at or below it.
    pub fn deepest_cut(&self, name: &Name) -> Option<&Name> {
        // Walk from just below the apex down toward the name, returning the
        // first (shallowest) cut — referrals happen at the topmost cut.
        let mut found: Option<&Name> = None;
        for keep in self.origin.label_count() + 1..=name.label_count() {
            let candidate = name.ancestor(keep).expect("keep <= label_count");
            if let Some(cut) = self.cuts.get(&candidate) {
                found = Some(cut);
                break; // topmost cut wins
            }
        }
        found
    }

    /// Iterates all (name, type, rrset) triples.
    pub fn iter(&self) -> impl Iterator<Item = (&Name, RrType, &RrSet)> {
        self.records
            .iter()
            .flat_map(|(name, types)| types.iter().map(move |(t, set)| (name, *t, set)))
    }

    /// Iterates all names in the zone (sorted by `Name`'s `Ord`).
    pub fn names(&self) -> impl Iterator<Item = &Name> {
        self.records.keys()
    }

    /// Total number of records (counting each rdata).
    pub fn record_count(&self) -> usize {
        self.records
            .values()
            .flat_map(|t| t.values())
            .map(|s| s.rdatas.len())
            .sum()
    }

    /// Returns all delegation cut names.
    pub fn cut_names(&self) -> impl Iterator<Item = &Name> {
        self.cuts.iter()
    }

    /// Records the canonical NSEC-chain order (set by the signing pass).
    pub fn set_nsec_order(&mut self, order: Vec<Name>) {
        self.nsec_order = order;
    }

    /// The NSEC owner canonically covering `qname` (the greatest chain
    /// member ≤ qname, wrapping to the chain's last name when qname sorts
    /// before the apex). `None` for unsigned zones.
    pub fn covering_nsec_owner(&self, qname: &Name) -> Option<&Name> {
        if self.nsec_order.is_empty() {
            return None;
        }
        let idx = self
            .nsec_order
            .partition_point(|n| n.canonical_cmp(qname) != std::cmp::Ordering::Greater);
        if idx == 0 {
            self.nsec_order.last()
        } else {
            self.nsec_order.get(idx - 1)
        }
    }

    /// Removes every rrset of `rtype` (used by the signing pass to re-sign).
    pub fn remove_type(&mut self, rtype: RrType) {
        for types in self.records.values_mut() {
            types.remove(&rtype);
        }
        self.records.retain(|_, types| !types.is_empty());
        if rtype == RrType::Nsec {
            self.nsec_order.clear();
        }
        // existing_names/cuts are left as-is; removal of DNSSEC types never
        // removes structural names in our usage.
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::Ipv4Addr;

    fn n(s: &str) -> Name {
        Name::parse(s).unwrap()
    }

    fn a(addr: &str) -> RData {
        RData::A(addr.parse::<Ipv4Addr>().unwrap())
    }

    fn zone_with_soa(origin: &str) -> Zone {
        Zone::with_fake_soa(n(origin))
    }

    #[test]
    fn add_and_get() {
        let mut z = zone_with_soa("example.com");
        z.add(Record::new(n("www.example.com"), 300, a("192.0.2.1")))
            .unwrap();
        let set = z.get(&n("www.example.com"), RrType::A).unwrap();
        assert_eq!(set.ttl, 300);
        assert_eq!(set.rdatas, vec![a("192.0.2.1")]);
    }

    #[test]
    fn rrset_merging_and_dedup() {
        let mut z = zone_with_soa("example.com");
        z.add(Record::new(n("www.example.com"), 300, a("192.0.2.1")))
            .unwrap();
        z.add(Record::new(n("www.example.com"), 600, a("192.0.2.2")))
            .unwrap();
        z.add(Record::new(n("www.example.com"), 999, a("192.0.2.1")))
            .unwrap();
        let set = z.get(&n("www.example.com"), RrType::A).unwrap();
        assert_eq!(set.ttl, 300, "first TTL wins");
        assert_eq!(set.rdatas.len(), 2, "duplicate rdata ignored");
    }

    #[test]
    fn out_of_zone_rejected() {
        let mut z = zone_with_soa("example.com");
        let err = z
            .add(Record::new(n("example.net"), 300, a("192.0.2.1")))
            .unwrap_err();
        assert!(matches!(err, ZoneError::OutOfZone { .. }));
    }

    #[test]
    fn empty_non_terminals_exist() {
        let mut z = zone_with_soa("example.com");
        z.add(Record::new(n("a.b.c.example.com"), 300, a("192.0.2.1")))
            .unwrap();
        assert!(z.name_exists(&n("a.b.c.example.com")));
        assert!(z.name_exists(&n("b.c.example.com")), "ENT must exist");
        assert!(z.name_exists(&n("c.example.com")), "ENT must exist");
        assert!(z.name_exists(&n("example.com")));
        assert!(!z.name_exists(&n("x.example.com")));
    }

    #[test]
    fn cname_exclusivity() {
        let mut z = zone_with_soa("example.com");
        z.add(Record::new(
            n("alias.example.com"),
            300,
            RData::Cname(n("www.example.com")),
        ))
        .unwrap();
        // Other data at a CNAME owner is rejected.
        assert!(matches!(
            z.add(Record::new(n("alias.example.com"), 300, a("192.0.2.1"))),
            Err(ZoneError::CnameConflict(_))
        ));
        // A different CNAME at the same owner is rejected.
        assert!(matches!(
            z.add(Record::new(
                n("alias.example.com"),
                300,
                RData::Cname(n("other.example.com"))
            )),
            Err(ZoneError::CnameConflict(_))
        ));
        // Same CNAME again is fine (idempotent).
        z.add(Record::new(
            n("alias.example.com"),
            300,
            RData::Cname(n("www.example.com")),
        ))
        .unwrap();
        // CNAME added to a name that has data is rejected.
        z.add(Record::new(n("www.example.com"), 300, a("192.0.2.1")))
            .unwrap();
        assert!(matches!(
            z.add(Record::new(
                n("www.example.com"),
                300,
                RData::Cname(n("x.example.com"))
            )),
            Err(ZoneError::CnameConflict(_))
        ));
    }

    #[test]
    fn apex_ns_is_not_a_cut() {
        let mut z = zone_with_soa("com");
        z.add(Record::new(
            n("com"),
            3600,
            RData::Ns(n("a.gtld-servers.net")),
        ))
        .unwrap();
        z.add(Record::new(
            n("example.com"),
            3600,
            RData::Ns(n("ns1.example.com")),
        ))
        .unwrap();
        assert!(z.deepest_cut(&n("com")).is_none());
        assert_eq!(z.deepest_cut(&n("example.com")).unwrap(), &n("example.com"));
        assert_eq!(
            z.deepest_cut(&n("www.example.com")).unwrap(),
            &n("example.com")
        );
        assert!(z.deepest_cut(&n("other.com")).is_none());
    }

    #[test]
    fn topmost_cut_wins() {
        // root zone delegating com, which (wrongly, but defensively) also
        // contains a deeper NS: topmost cut must be chosen.
        let mut z = zone_with_soa(".");
        z.add(Record::new(
            n("com"),
            3600,
            RData::Ns(n("a.gtld-servers.net")),
        ))
        .unwrap();
        z.add(Record::new(
            n("example.com"),
            3600,
            RData::Ns(n("ns1.example.com")),
        ))
        .unwrap();
        assert_eq!(z.deepest_cut(&n("www.example.com")).unwrap(), &n("com"));
    }

    #[test]
    fn validate_requires_soa() {
        let z = Zone::new(n("example.com"));
        assert!(matches!(z.validate(), Err(ZoneError::MissingSoa(_))));
        assert!(zone_with_soa("example.com").validate().is_ok());
    }

    #[test]
    fn record_count_counts_rdatas() {
        let mut z = zone_with_soa("example.com");
        z.add(Record::new(n("www.example.com"), 300, a("192.0.2.1")))
            .unwrap();
        z.add(Record::new(n("www.example.com"), 300, a("192.0.2.2")))
            .unwrap();
        assert_eq!(z.record_count(), 3); // SOA + 2 A
    }

    #[test]
    fn fake_soa_zone_valid_for_root() {
        let z = Zone::with_fake_soa(Name::root());
        assert!(z.validate().is_ok());
        assert!(z.soa().is_some());
    }

    #[test]
    fn remove_type_strips_rrsets() {
        let mut z = zone_with_soa("example.com");
        z.add(Record::new(n("www.example.com"), 300, a("192.0.2.1")))
            .unwrap();
        z.add(Record::with_type(
            n("www.example.com"),
            RrType::Rrsig,
            300,
            RData::Rrsig {
                type_covered: RrType::A,
                algorithm: 8,
                labels: 3,
                original_ttl: 300,
                expiration: 0,
                inception: 0,
                key_tag: 1,
                signer: n("example.com"),
                signature: vec![0; 128],
            },
        ))
        .unwrap();
        z.remove_type(RrType::Rrsig);
        assert!(z.get(&n("www.example.com"), RrType::Rrsig).is_none());
        assert!(z.get(&n("www.example.com"), RrType::A).is_some());
    }
}
