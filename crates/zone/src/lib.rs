//! Zone data model and authoritative lookup for the LDplayer reproduction.
//!
//! Provides:
//!
//! * [`Zone`] — one zone's records with RFC 1034-style lookup semantics:
//!   exact matches, CNAME chains, wildcard synthesis, delegations with glue,
//!   NXDOMAIN/NODATA distinctions ([`LookupOutcome`]),
//! * [`master`] — zone master-file parsing and serialization (the zone
//!   constructor's output format, §2.3 of the paper),
//! * [`ZoneSet`] — a collection of zones with longest-suffix selection, the
//!   storage behind the meta-DNS-server,
//! * [`view`] — split-horizon views keyed by query source address, the
//!   mechanism that lets a single server instance emulate every level of the
//!   DNS hierarchy (§2.4),
//! * [`dnssec`] — synthetic zone signing with configurable ZSK sizes for the
//!   DNSSEC what-if experiments (§5.1).

#![deny(rust_2018_idioms, unsafe_op_in_unsafe_fn, unreachable_pub)]

pub mod dnssec;
pub mod lookup;
pub mod master;
pub mod view;
mod zone;
mod zoneset;

pub use lookup::{LookupOutcome, Referral};
pub use view::{ViewSelector, ViewTable};
pub use zone::{RrSet, Zone, ZoneError};
pub use zoneset::ZoneSet;
