//! Authoritative lookup over a [`Zone`]: the RFC 1034 §4.3.2 algorithm as
//! the meta-DNS-server needs it — exact matches, CNAME chains, wildcard
//! synthesis, delegation referrals with glue, and NXDOMAIN/NODATA, plus
//! DNSSEC record attachment when the query set the DO bit.
//!
//! Correct *referrals* are the crux of LDplayer's hierarchy emulation: a
//! naive server that knows the whole hierarchy would answer
//! `www.example.com A` directly, skipping the root→TLD→SLD round trips the
//! paper preserves (§2.4). Here each `Zone` only answers for itself, so a
//! query against the root zone yields the `com` referral exactly as a real
//! root server would.

use ldp_wire::{Name, RData, Record, RrType};

use crate::zone::{RrSet, Zone};

/// A delegation: the cut point, its NS rrset, and any in-zone glue.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Referral {
    /// The delegated child zone name.
    pub cut: Name,
    /// NS records at the cut.
    pub ns_records: Vec<Record>,
    /// Glue A/AAAA records for in-bailiwick nameservers.
    pub glue: Vec<Record>,
    /// DS records at the cut (DNSSEC delegations), present when requested.
    pub ds_records: Vec<Record>,
}

/// The result of an authoritative lookup.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LookupOutcome {
    /// Authoritative data. `records` holds the answer section (including
    /// any CNAME chain walked inside this zone); `authority` carries the
    /// apex NS set.
    Answer {
        records: Vec<Record>,
        authority: Vec<Record>,
        additional: Vec<Record>,
    },
    /// The name is below a delegation: answer with a referral.
    Delegation(Referral),
    /// The name exists but has no data of the requested type.
    NoData {
        soa: Option<Record>,
        /// Authenticated denial (NSEC + RRSIGs) when requested and signed.
        denial: Vec<Record>,
    },
    /// The name does not exist in this zone.
    NxDomain {
        soa: Option<Record>,
        /// Authenticated denial (NSEC + RRSIGs) when requested and signed.
        denial: Vec<Record>,
    },
    /// The name is not within this zone at all (server should look for a
    /// better zone or refuse).
    OutOfZone,
}

/// Maximum CNAME chain length followed within one zone; prevents loops in
/// hostile or buggy zone data.
const MAX_CNAME_CHAIN: usize = 12;

impl Zone {
    /// Performs an authoritative lookup. `dnssec_ok` attaches RRSIG/DS
    /// records (as present in the zone) the way a signed zone would.
    pub fn lookup(&self, qname: &Name, qtype: RrType, dnssec_ok: bool) -> LookupOutcome {
        if !qname.is_subdomain_of(self.origin()) {
            return LookupOutcome::OutOfZone;
        }

        // Delegation check first: anything at or below a cut is referred,
        // except a DS query *at* the cut (the parent is authoritative for
        // DS) and NS data retained at the cut for referral synthesis.
        if let Some(cut) = self.deepest_cut(qname).cloned() {
            let at_cut = *qname == cut;
            let ds_at_cut = at_cut && qtype == RrType::Ds;
            if !ds_at_cut {
                return LookupOutcome::Delegation(self.referral_at(&cut, dnssec_ok));
            }
        }

        let mut answer: Vec<Record> = Vec::new();
        let mut current = qname.clone();
        for _hop in 0..MAX_CNAME_CHAIN {
            if let Some(types) = self.get_all(&current) {
                // Exact name exists.
                if let Some(set) = types.get(&qtype) {
                    answer.extend(set.to_records(&current, qtype));
                    if dnssec_ok {
                        self.attach_rrsigs(&current, qtype, &mut answer);
                    }
                    return self.finish_answer(answer, dnssec_ok);
                }
                if qtype == RrType::Any {
                    for (t, set) in types {
                        if *t == RrType::Rrsig && !dnssec_ok {
                            continue;
                        }
                        answer.extend(set.to_records(&current, *t));
                    }
                    return self.finish_answer(answer, dnssec_ok);
                }
                if let Some(cname_set) = types.get(&RrType::Cname) {
                    answer.extend(cname_set.to_records(&current, RrType::Cname));
                    if dnssec_ok {
                        self.attach_rrsigs(&current, RrType::Cname, &mut answer);
                    }
                    // Follow the chain while the target stays in-zone.
                    if let Some(RData::Cname(target)) = cname_set.rdatas.first() {
                        if target.is_subdomain_of(self.origin())
                            && self.deepest_cut(target).is_none()
                        {
                            current = target.clone();
                            continue;
                        }
                    }
                    return self.finish_answer(answer, dnssec_ok);
                }
                // Name exists, no data of this type.
                return LookupOutcome::NoData {
                    soa: self.soa_record(),
                    denial: self.denial_records(&current, dnssec_ok),
                };
            }

            // An existing name with no records (empty non-terminal) is
            // NODATA, and blocks wildcard synthesis (RFC 4592 §2.2.2).
            if self.name_exists(&current) {
                return LookupOutcome::NoData {
                    soa: self.soa_record(),
                    denial: self.denial_records(&current, dnssec_ok),
                };
            }

            // Name doesn't exist: wildcard synthesis (RFC 4592). Find the
            // closest encloser (deepest existing ancestor), then look for
            // `*.<closest encloser>`.
            if let Some(wild_types) = self.closest_wildcard(&current) {
                let (wild_owner, types) = wild_types;
                if let Some(set) = types.get(&qtype) {
                    answer.extend(synthesize(set, &current, qtype));
                    if dnssec_ok {
                        let mut sigs = Vec::new();
                        self.attach_rrsigs(&wild_owner, qtype, &mut sigs);
                        // Re-own the signatures at the synthesized name.
                        for mut s in sigs {
                            s.name = current.clone();
                            answer.push(s);
                        }
                    }
                    return self.finish_answer(answer, dnssec_ok);
                }
                if let Some(cname_set) = types.get(&RrType::Cname) {
                    answer.extend(synthesize(cname_set, &current, RrType::Cname));
                    if let Some(RData::Cname(target)) = cname_set.rdatas.first() {
                        if target.is_subdomain_of(self.origin())
                            && self.deepest_cut(target).is_none()
                        {
                            current = target.clone();
                            continue;
                        }
                    }
                    return self.finish_answer(answer, dnssec_ok);
                }
                return LookupOutcome::NoData {
                    soa: self.soa_record(),
                    denial: self.denial_records(&current, dnssec_ok),
                };
            }

            // No exact name, no wildcard.
            if answer.is_empty() {
                return LookupOutcome::NxDomain {
                    soa: self.soa_record(),
                    denial: self.denial_records(&current, dnssec_ok),
                };
            }
            // CNAME chain dangled into a nonexistent in-zone name: return
            // what we collected with the SOA hint.
            return self.finish_answer(answer, dnssec_ok);
        }
        // Chain too long; return what we have.
        self.finish_answer(answer, dnssec_ok)
    }

    /// Builds the referral response content at a cut.
    pub fn referral_at(&self, cut: &Name, dnssec_ok: bool) -> Referral {
        let ns_set = self.get(cut, RrType::Ns);
        let ns_records = ns_set
            .map(|s| s.to_records(cut, RrType::Ns))
            .unwrap_or_default();
        let mut glue = Vec::new();
        for rec in &ns_records {
            if let RData::Ns(target) = &rec.rdata {
                // Glue only for in-zone (in-bailiwick) nameserver names.
                if target.is_subdomain_of(self.origin()) {
                    for t in [RrType::A, RrType::Aaaa] {
                        if let Some(set) = self.get(target, t) {
                            glue.extend(set.to_records(target, t));
                        }
                    }
                }
            }
        }
        let mut ds_records = Vec::new();
        if dnssec_ok {
            if let Some(set) = self.get(cut, RrType::Ds) {
                ds_records.extend(set.to_records(cut, RrType::Ds));
                self.attach_rrsigs(cut, RrType::Ds, &mut ds_records);
            }
        }
        Referral {
            cut: cut.clone(),
            ns_records,
            glue,
            ds_records,
        }
    }

    fn finish_answer(&self, records: Vec<Record>, dnssec_ok: bool) -> LookupOutcome {
        // Authority: apex NS set, additional: their in-zone addresses.
        let mut authority = Vec::new();
        let mut additional = Vec::new();
        if let Some(ns_set) = self.get(self.origin(), RrType::Ns) {
            authority.extend(ns_set.to_records(self.origin(), RrType::Ns));
            if dnssec_ok {
                self.attach_rrsigs(self.origin(), RrType::Ns, &mut authority);
            }
            for rec in authority.clone() {
                if let RData::Ns(target) = &rec.rdata {
                    if target.is_subdomain_of(self.origin()) {
                        for t in [RrType::A, RrType::Aaaa] {
                            if let Some(set) = self.get(target, t) {
                                additional.extend(set.to_records(target, t));
                            }
                        }
                    }
                }
            }
        }
        LookupOutcome::Answer {
            records,
            authority,
            additional,
        }
    }

    /// Appends RRSIGs covering (name, covered_type) when the zone holds them.
    fn attach_rrsigs(&self, name: &Name, covered: RrType, out: &mut Vec<Record>) {
        if let Some(set) = self.get(name, RrType::Rrsig) {
            for rd in &set.rdatas {
                if let RData::Rrsig { type_covered, .. } = rd {
                    if *type_covered == covered {
                        out.push(Record {
                            name: name.clone(),
                            rtype: RrType::Rrsig,
                            class: ldp_wire::RrClass::In,
                            ttl: set.ttl,
                            rdata: rd.clone(),
                        });
                    }
                }
            }
        }
    }

    /// Builds the authenticated-denial record set for a negative answer:
    /// the covering NSEC with its signatures, plus the SOA's signature
    /// (RFC 4035 §3.1.3). Empty when the zone is unsigned or DO is clear.
    /// These records are what make signed NXDOMAIN responses large — the
    /// dominant term in the paper's §5.1 DO-traffic growth.
    fn denial_records(&self, qname: &Name, dnssec_ok: bool) -> Vec<Record> {
        if !dnssec_ok {
            return Vec::new();
        }
        let mut out = Vec::new();
        if let Some(owner) = self.covering_nsec_owner(qname).cloned() {
            if let Some(set) = self.get(&owner, RrType::Nsec) {
                out.extend(set.to_records(&owner, RrType::Nsec));
            }
            self.attach_rrsigs(&owner, RrType::Nsec, &mut out);
        }
        self.attach_rrsigs(self.origin(), RrType::Soa, &mut out);
        out
    }

    /// RFC 4592 wildcard search: walk ancestors of `qname` from deepest to
    /// shallowest; at the first *existing* ancestor (the closest encloser),
    /// check for `*.<encloser>`. Source-of-synthesis must not itself exist
    /// on the path (guaranteed because we only get here when `qname` does
    /// not exist).
    fn closest_wildcard(
        &self,
        qname: &Name,
    ) -> Option<(Name, &std::collections::HashMap<RrType, RrSet>)> {
        let origin_labels = self.origin().label_count();
        let mut keep = qname.label_count();
        while keep > origin_labels {
            let candidate = qname.ancestor(keep - 1).expect("within label count");
            if self.name_exists(&candidate) {
                // candidate is the closest encloser.
                let wild = candidate.prepend(b"*").expect("wildcard label fits");
                return self.get_all(&wild).map(|types| (wild, types));
            }
            keep -= 1;
        }
        None
    }
}

/// Synthesizes records at `owner` from a wildcard rrset.
fn synthesize(set: &RrSet, owner: &Name, rtype: RrType) -> Vec<Record> {
    set.to_records(owner, rtype)
        .into_iter()
        .map(|mut r| {
            r.name = owner.clone();
            r
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ldp_wire::Record;
    use std::net::Ipv4Addr;

    fn n(s: &str) -> Name {
        Name::parse(s).unwrap()
    }

    fn a(addr: &str) -> RData {
        RData::A(addr.parse::<Ipv4Addr>().unwrap())
    }

    /// A root zone delegating `com`, and a com zone delegating
    /// `example.com`, and the example.com zone itself — the three-level
    /// hierarchy from the paper's walkthrough.
    fn root_zone() -> Zone {
        let mut z = Zone::with_fake_soa(Name::root());
        z.add(Record::new(
            Name::root(),
            518400,
            RData::Ns(n("a.root-servers.net")),
        ))
        .unwrap();
        z.add(Record::new(
            n("a.root-servers.net"),
            518400,
            a("198.41.0.4"),
        ))
        .unwrap();
        z.add(Record::new(
            n("com"),
            172800,
            RData::Ns(n("a.gtld-servers.net")),
        ))
        .unwrap();
        z.add(Record::new(
            n("a.gtld-servers.net"),
            172800,
            a("192.5.6.30"),
        ))
        .unwrap();
        z
    }

    fn com_zone() -> Zone {
        let mut z = Zone::with_fake_soa(n("com"));
        z.add(Record::new(
            n("com"),
            172800,
            RData::Ns(n("a.gtld-servers.net")),
        ))
        .unwrap();
        z.add(Record::new(
            n("example.com"),
            172800,
            RData::Ns(n("ns1.example.com")),
        ))
        .unwrap();
        z.add(Record::new(n("ns1.example.com"), 172800, a("192.0.2.53")))
            .unwrap();
        z
    }

    fn example_zone() -> Zone {
        let mut z = Zone::with_fake_soa(n("example.com"));
        z.add(Record::new(
            n("example.com"),
            3600,
            RData::Ns(n("ns1.example.com")),
        ))
        .unwrap();
        z.add(Record::new(n("ns1.example.com"), 3600, a("192.0.2.53")))
            .unwrap();
        z.add(Record::new(n("www.example.com"), 300, a("192.0.2.80")))
            .unwrap();
        z.add(Record::new(
            n("alias.example.com"),
            300,
            RData::Cname(n("www.example.com")),
        ))
        .unwrap();
        z.add(Record::new(
            n("ext.example.com"),
            300,
            RData::Cname(n("target.example.net")),
        ))
        .unwrap();
        z.add(Record::new(n("*.wild.example.com"), 60, a("192.0.2.99")))
            .unwrap();
        z.add(Record::new(n("a.deep.example.com"), 60, a("192.0.2.11")))
            .unwrap();
        z
    }

    #[test]
    fn root_refers_com() {
        let z = root_zone();
        match z.lookup(&n("www.example.com"), RrType::A, false) {
            LookupOutcome::Delegation(r) => {
                assert_eq!(r.cut, n("com"));
                assert_eq!(r.ns_records.len(), 1);
                // a.gtld-servers.net is in-bailiwick of the root.
                assert_eq!(r.glue.len(), 1);
            }
            other => panic!("expected delegation, got {other:?}"),
        }
    }

    #[test]
    fn com_refers_example() {
        let z = com_zone();
        match z.lookup(&n("www.example.com"), RrType::A, false) {
            LookupOutcome::Delegation(r) => {
                assert_eq!(r.cut, n("example.com"));
                assert_eq!(r.glue.len(), 1, "ns1.example.com glue expected");
            }
            other => panic!("expected delegation, got {other:?}"),
        }
    }

    #[test]
    fn leaf_zone_answers() {
        let z = example_zone();
        match z.lookup(&n("www.example.com"), RrType::A, false) {
            LookupOutcome::Answer {
                records,
                authority,
                additional,
            } => {
                assert_eq!(records.len(), 1);
                assert_eq!(records[0].rdata, a("192.0.2.80"));
                assert_eq!(authority.len(), 1, "apex NS in authority");
                assert_eq!(additional.len(), 1, "ns glue in additional");
            }
            other => panic!("expected answer, got {other:?}"),
        }
    }

    #[test]
    fn referral_not_answer_for_delegated_name() {
        // The crucial meta-DNS-server property: the root zone must NOT
        // answer www.example.com even if another zone on the same server
        // could.
        let z = root_zone();
        assert!(matches!(
            z.lookup(&n("www.example.com"), RrType::A, false),
            LookupOutcome::Delegation(_)
        ));
    }

    #[test]
    fn cname_chain_followed_in_zone() {
        let z = example_zone();
        match z.lookup(&n("alias.example.com"), RrType::A, false) {
            LookupOutcome::Answer { records, .. } => {
                assert_eq!(records.len(), 2);
                assert_eq!(records[0].rtype, RrType::Cname);
                assert_eq!(records[1].rtype, RrType::A);
                assert_eq!(records[1].name, n("www.example.com"));
            }
            other => panic!("expected answer, got {other:?}"),
        }
    }

    #[test]
    fn cname_to_external_target_stops() {
        let z = example_zone();
        match z.lookup(&n("ext.example.com"), RrType::A, false) {
            LookupOutcome::Answer { records, .. } => {
                assert_eq!(records.len(), 1);
                assert_eq!(records[0].rtype, RrType::Cname);
            }
            other => panic!("expected answer, got {other:?}"),
        }
    }

    #[test]
    fn cname_query_returns_cname_only() {
        let z = example_zone();
        match z.lookup(&n("alias.example.com"), RrType::Cname, false) {
            LookupOutcome::Answer { records, .. } => {
                assert_eq!(records.len(), 1);
                assert_eq!(records[0].rtype, RrType::Cname);
            }
            other => panic!("expected answer, got {other:?}"),
        }
    }

    #[test]
    fn wildcard_synthesis() {
        let z = example_zone();
        match z.lookup(&n("anything.wild.example.com"), RrType::A, false) {
            LookupOutcome::Answer { records, .. } => {
                assert_eq!(records.len(), 1);
                assert_eq!(records[0].name, n("anything.wild.example.com"));
                assert_eq!(records[0].rdata, a("192.0.2.99"));
            }
            other => panic!("expected answer, got {other:?}"),
        }
        // Multi-label expansion also matches.
        assert!(matches!(
            z.lookup(&n("a.b.wild.example.com"), RrType::A, false),
            LookupOutcome::Answer { .. }
        ));
    }

    #[test]
    fn wildcard_does_not_match_existing_name() {
        let z = example_zone();
        // www exists, so *.wild never applies to it; and a query for a type
        // www lacks is NODATA.
        assert!(matches!(
            z.lookup(&n("www.example.com"), RrType::Mx, false),
            LookupOutcome::NoData { .. }
        ));
    }

    #[test]
    fn wildcard_type_mismatch_is_nodata() {
        let z = example_zone();
        assert!(matches!(
            z.lookup(&n("x.wild.example.com"), RrType::Mx, false),
            LookupOutcome::NoData { .. }
        ));
    }

    #[test]
    fn nxdomain_with_soa() {
        let z = example_zone();
        match z.lookup(&n("nope.example.com"), RrType::A, false) {
            LookupOutcome::NxDomain { soa, .. } => assert!(soa.is_some()),
            other => panic!("expected nxdomain, got {other:?}"),
        }
    }

    #[test]
    fn empty_non_terminal_is_nodata() {
        let z = example_zone();
        // deep.example.com exists only as an ENT (a.deep.example.com has data).
        assert!(matches!(
            z.lookup(&n("deep.example.com"), RrType::A, false),
            LookupOutcome::NoData { .. }
        ));
    }

    #[test]
    fn out_of_zone() {
        let z = example_zone();
        assert_eq!(
            z.lookup(&n("example.net"), RrType::A, false),
            LookupOutcome::OutOfZone
        );
    }

    #[test]
    fn any_query_returns_all_types() {
        let z = example_zone();
        match z.lookup(&n("example.com"), RrType::Any, false) {
            LookupOutcome::Answer { records, .. } => {
                let types: std::collections::HashSet<_> = records.iter().map(|r| r.rtype).collect();
                assert!(types.contains(&RrType::Soa));
                assert!(types.contains(&RrType::Ns));
            }
            other => panic!("expected answer, got {other:?}"),
        }
    }

    #[test]
    fn cname_loop_terminates() {
        let mut z = Zone::with_fake_soa(n("example.com"));
        z.add(Record::new(
            n("a.example.com"),
            60,
            RData::Cname(n("b.example.com")),
        ))
        .unwrap();
        z.add(Record::new(
            n("b.example.com"),
            60,
            RData::Cname(n("a.example.com")),
        ))
        .unwrap();
        // Must not hang; outcome shape unimportant beyond termination.
        let _ = z.lookup(&n("a.example.com"), RrType::A, false);
    }

    #[test]
    fn dnssec_attaches_rrsig_and_ds() {
        let mut z = com_zone();
        let sig = |covered: RrType, name: &str| {
            Record::with_type(
                n(name),
                RrType::Rrsig,
                3600,
                RData::Rrsig {
                    type_covered: covered,
                    algorithm: 8,
                    labels: 2,
                    original_ttl: 3600,
                    expiration: 0,
                    inception: 0,
                    key_tag: 7,
                    signer: n("com"),
                    signature: vec![0xAA; 256],
                },
            )
        };
        z.add(Record::with_type(
            n("example.com"),
            RrType::Ds,
            3600,
            RData::Ds {
                key_tag: 7,
                algorithm: 8,
                digest_type: 2,
                digest: vec![0; 32],
            },
        ))
        .unwrap();
        z.add(sig(RrType::Ds, "example.com")).unwrap();

        match z.lookup(&n("www.example.com"), RrType::A, true) {
            LookupOutcome::Delegation(r) => {
                assert_eq!(r.ds_records.len(), 2, "DS + its RRSIG");
            }
            other => panic!("expected delegation, got {other:?}"),
        }
        // Without DO, no DS records.
        match z.lookup(&n("www.example.com"), RrType::A, false) {
            LookupOutcome::Delegation(r) => assert!(r.ds_records.is_empty()),
            other => panic!("expected delegation, got {other:?}"),
        }
    }

    #[test]
    fn ds_at_cut_answered_by_parent() {
        let mut z = com_zone();
        z.add(Record::with_type(
            n("example.com"),
            RrType::Ds,
            3600,
            RData::Ds {
                key_tag: 7,
                algorithm: 8,
                digest_type: 2,
                digest: vec![0; 32],
            },
        ))
        .unwrap();
        match z.lookup(&n("example.com"), RrType::Ds, false) {
            LookupOutcome::Answer { records, .. } => {
                assert_eq!(records.len(), 1);
                assert_eq!(records[0].rtype, RrType::Ds);
            }
            other => panic!("expected DS answer from parent, got {other:?}"),
        }
    }
}
