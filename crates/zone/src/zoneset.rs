//! A collection of zones with longest-suffix zone selection — the storage
//! behind the meta-DNS-server, which hosts every zone of the emulated
//! hierarchy in one process (§2.4 of the paper).

use std::collections::HashMap;
use std::sync::Arc;

use ldp_wire::{Name, RrType};

use crate::lookup::LookupOutcome;
use crate::zone::Zone;

/// An ordered collection of zones indexed by origin.
#[derive(Debug, Clone, Default)]
pub struct ZoneSet {
    zones: HashMap<Name, Arc<Zone>>,
}

impl ZoneSet {
    pub fn new() -> ZoneSet {
        ZoneSet::default()
    }

    /// Adds (or replaces) a zone.
    pub fn insert(&mut self, zone: Zone) {
        self.zones.insert(zone.origin().clone(), Arc::new(zone));
    }

    /// Looks up a zone by exact origin.
    pub fn get(&self, origin: &Name) -> Option<&Arc<Zone>> {
        self.zones.get(origin)
    }

    /// Number of zones held.
    pub fn len(&self) -> usize {
        self.zones.len()
    }

    /// True when no zones are held.
    pub fn is_empty(&self) -> bool {
        self.zones.is_empty()
    }

    /// Iterates all zones.
    pub fn iter(&self) -> impl Iterator<Item = &Arc<Zone>> {
        self.zones.values()
    }

    /// Finds the zone with the longest origin that is an ancestor of (or
    /// equal to) `qname` — standard "closest enclosing zone" selection.
    pub fn find_zone(&self, qname: &Name) -> Option<&Arc<Zone>> {
        let mut keep = qname.label_count();
        loop {
            let candidate = qname.ancestor(keep)?;
            if let Some(z) = self.zones.get(&candidate) {
                return Some(z);
            }
            if keep == 0 {
                return None;
            }
            keep -= 1;
        }
    }

    /// Convenience: select the best zone and run a lookup in it.
    /// Returns `None` when no zone covers the name at all.
    pub fn lookup(
        &self,
        qname: &Name,
        qtype: RrType,
        dnssec_ok: bool,
    ) -> Option<(Arc<Zone>, LookupOutcome)> {
        let zone = self.find_zone(qname)?.clone();
        let outcome = zone.lookup(qname, qtype, dnssec_ok);
        Some((zone, outcome))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ldp_wire::{RData, Record};

    fn n(s: &str) -> Name {
        Name::parse(s).unwrap()
    }

    fn make_set() -> ZoneSet {
        let mut set = ZoneSet::new();
        set.insert(Zone::with_fake_soa(Name::root()));
        set.insert(Zone::with_fake_soa(n("com")));
        set.insert(Zone::with_fake_soa(n("example.com")));
        set
    }

    #[test]
    fn longest_suffix_wins() {
        let set = make_set();
        assert_eq!(
            set.find_zone(&n("www.example.com")).unwrap().origin(),
            &n("example.com")
        );
        assert_eq!(set.find_zone(&n("other.com")).unwrap().origin(), &n("com"));
        assert_eq!(
            set.find_zone(&n("example.net")).unwrap().origin(),
            &Name::root()
        );
        assert_eq!(
            set.find_zone(&Name::root()).unwrap().origin(),
            &Name::root()
        );
    }

    #[test]
    fn no_root_means_uncovered_names() {
        let mut set = ZoneSet::new();
        set.insert(Zone::with_fake_soa(n("example.com")));
        assert!(set.find_zone(&n("example.net")).is_none());
        assert!(set.find_zone(&n("www.example.com")).is_some());
    }

    #[test]
    fn lookup_routes_to_best_zone() {
        let mut set = make_set();
        let mut z = Zone::with_fake_soa(n("example.com"));
        z.add(Record::new(
            n("www.example.com"),
            300,
            RData::A("192.0.2.1".parse().unwrap()),
        ))
        .unwrap();
        set.insert(z);
        let (zone, outcome) = set.lookup(&n("www.example.com"), RrType::A, false).unwrap();
        assert_eq!(zone.origin(), &n("example.com"));
        assert!(matches!(outcome, LookupOutcome::Answer { .. }));
    }

    #[test]
    fn replace_zone() {
        let mut set = make_set();
        assert_eq!(set.len(), 3);
        set.insert(Zone::with_fake_soa(n("com")));
        assert_eq!(set.len(), 3);
    }
}
