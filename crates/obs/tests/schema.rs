//! Golden-schema tests for the run manifest: top-level key order, stage
//! entry shape, and the stage names a `StageBreakdown` contributes. CI
//! diffs manifests across double runs and across commits, so any change
//! here must be a deliberate schema bump (see DESIGN.md §9).

use ldp_metrics::LogHistogram;
use ldp_obs::{RunManifest, StageBreakdown, SCHEMA};
use serde::{Serialize, Value};
use serde_json::json;

fn object_keys(v: &Value) -> Vec<String> {
    let Value::Object(fields) = v else {
        panic!("expected a JSON object, got {v:?}");
    };
    fields.iter().map(|(k, _)| k.clone()).collect()
}

#[test]
fn manifest_top_level_schema() {
    let mut h = LogHistogram::new();
    h.record_n(100, 5);
    let m = RunManifest::new("golden")
        .seed(1)
        .scale(0.5)
        .retry_policy(json!({"timeout_ms": 250}))
        .chaos_policy(json!({"drop_responses": 0.2}))
        .stage("rtt", &h)
        .faults(json!({"timeouts": 0}))
        .throughput(vec![100.0, 101.0])
        .extra("note", json!("x"));
    let v = m.to_json_value();
    assert_eq!(
        object_keys(&v),
        [
            "schema",
            "name",
            "git_rev",
            "seed",
            "scale",
            "obs_sample",
            "retry",
            "chaos",
            "stages",
            "faults",
            "throughput_qps",
            "timeseries",
            "extra",
        ]
    );
    assert_eq!(v.get("schema").and_then(Value::as_str), Some(SCHEMA));
    assert_eq!(SCHEMA, "ldp.run-manifest/v2");
}

/// The v2 `timeseries` section: produced by the telemetry sampler, fixed
/// key order (`unit`, `ticks`, `series`, `derived`), tick-indexed points
/// so a fixed-seed run emits identical bytes.
#[test]
fn manifest_v2_timeseries_schema() {
    let section = json!({
        "unit": "ticks",
        "ticks": 3u64,
        "series": {
            "ldp_replay_sent_total{shard=\"0\"}": [[0u64, 0u64], [1u64, 40u64], [2u64, 80u64]],
        },
        "derived": {
            "sent_per_tick": 40.0,
            "send_lag_us_per_tick": 1.5,
        },
    });
    let m = RunManifest::new("golden").timeseries(section);
    let v = m.to_json_value();
    let ts = v.get("timeseries").expect("timeseries present");
    assert_eq!(object_keys(ts), ["unit", "ticks", "series", "derived"]);
    assert_eq!(ts.get("unit").and_then(Value::as_str), Some("ticks"));
    let series = ts.get("series").expect("series map");
    let keys = object_keys(series);
    assert_eq!(keys, ["ldp_replay_sent_total{shard=\"0\"}"]);
    // Without the builder, the section is null — v1 consumers reading a
    // v2 manifest see an explicit absent marker, not a missing key.
    let bare = RunManifest::new("golden").to_json_value();
    assert_eq!(bare.get("timeseries"), Some(&Value::Null));
}

#[test]
fn stage_entry_schema() {
    let mut h = LogHistogram::new();
    h.record(2_500);
    let m = RunManifest::new("golden").stage("rtt", &h);
    let v = m.to_json_value();
    let stages = v.get("stages").expect("stages present");
    assert_eq!(object_keys(stages), ["rtt"]);
    let entry = stages.get("rtt").expect("stage entry");
    assert_eq!(object_keys(entry), ["unit", "histogram", "summary_ms"]);
    assert_eq!(entry.get("unit").and_then(Value::as_str), Some("us"));
    // The embedded histogram uses the pinned LogHistogram schema.
    let hist = entry.get("histogram").expect("histogram");
    assert_eq!(
        hist.get("scheme").and_then(Value::as_str),
        Some("log2-32"),
        "stage histograms embed the standard LogHistogram serialization"
    );
}

#[test]
fn stage_breakdown_contributes_fixed_stage_names() {
    let b = StageBreakdown::default();
    let m = RunManifest::new("golden").stage_breakdown(&b);
    let v = m.to_json_value();
    assert_eq!(
        object_keys(v.get("stages").expect("stages")),
        ["batch_wait", "queue_wait", "send_lag", "rtt", "end_to_end"]
    );
    // And the span counters ride along in `extra`.
    let extra = v.get("extra").expect("extra");
    assert_eq!(object_keys(extra), ["span_counts"]);
    assert_eq!(
        object_keys(extra.get("span_counts").expect("span_counts")),
        ["queries", "answered", "gave_up", "retries"]
    );
}
