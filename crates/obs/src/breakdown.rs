//! Turning raw span events into per-query decompositions and per-stage
//! latency histograms.
//!
//! A fault-free query's stages telescope: `batch_wait + queue_wait +
//! send_lag + rtt == end-to-end` exactly, because each duration is the
//! difference of adjacent stage timestamps. `rtt` is wire plus server
//! time combined — a live replay cannot split them without server-side
//! clocks, which is exactly what the server's own handle-time histogram
//! (`LiveStats`) provides alongside.

use std::collections::BTreeMap;

use ldp_metrics::LogHistogram;

use crate::span::{SpanEvent, Stage};

/// The assembled span of one query: first timestamp seen for each
/// terminal-less stage, plus every retry segment.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct QuerySpan {
    pub shard: u32,
    pub seq: u64,
    pub read_us: Option<u64>,
    pub batched_us: Option<u64>,
    pub scheduled_us: Option<u64>,
    pub sent_us: Option<u64>,
    pub answered_us: Option<u64>,
    pub gave_up_us: Option<u64>,
    /// Retransmit timestamps — each is one extra wire segment.
    pub retries_us: Vec<u64>,
}

impl QuerySpan {
    /// Time from batch flush until the querier dequeued the batch.
    pub fn queue_wait_us(&self) -> Option<u64> {
        Some(self.scheduled_us?.saturating_sub(self.batched_us?))
    }

    /// Time the record sat in the Postman's batcher before flush.
    pub fn batch_wait_us(&self) -> Option<u64> {
        Some(self.batched_us?.saturating_sub(self.read_us?))
    }

    /// Pacing delay: dequeue → send initiation (the `Sent` stamp is
    /// taken just before the datagram is handed to the kernel, so it is
    /// causally ordered before the answer). In timed mode this is
    /// dominated by the schedule (waiting for the trace's send time),
    /// not by overhead.
    pub fn send_lag_us(&self) -> Option<u64> {
        Some(self.sent_us?.saturating_sub(self.scheduled_us?))
    }

    /// Wire + server time: first send → answer (spanning any retries).
    pub fn rtt_us(&self) -> Option<u64> {
        Some(self.answered_us?.saturating_sub(self.sent_us?))
    }

    /// Reader pickup → answer.
    pub fn end_to_end_us(&self) -> Option<u64> {
        Some(self.answered_us?.saturating_sub(self.read_us?))
    }

    /// Extra wire segments this query cost (retransmits).
    pub fn wire_segments(&self) -> usize {
        1 + self.retries_us.len()
    }
}

/// Groups a drained, sorted event list into per-query spans. Events for
/// the same `(shard, seq)` merge; for duplicated stages the earliest
/// timestamp wins (retries excepted — every retry is kept).
pub fn assemble(events: &[SpanEvent]) -> Vec<QuerySpan> {
    let mut by_query: BTreeMap<(u32, u64), QuerySpan> = BTreeMap::new();
    for e in events {
        let span = by_query
            .entry((e.shard, e.seq))
            .or_insert_with(|| QuerySpan {
                shard: e.shard,
                seq: e.seq,
                ..QuerySpan::default()
            });
        let slot = match e.stage {
            Stage::Read => &mut span.read_us,
            Stage::Batched => &mut span.batched_us,
            Stage::Scheduled => &mut span.scheduled_us,
            Stage::Sent => &mut span.sent_us,
            Stage::Answered => &mut span.answered_us,
            Stage::GaveUp => &mut span.gave_up_us,
            Stage::Retry => {
                span.retries_us.push(e.t_us);
                continue;
            }
        };
        *slot = Some(match *slot {
            Some(prev) => prev.min(e.t_us),
            None => e.t_us,
        });
    }
    by_query.into_values().collect()
}

/// Per-stage latency histograms over a whole replay (µs ticks).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct StageBreakdown {
    pub batch_wait: LogHistogram,
    pub queue_wait: LogHistogram,
    pub send_lag: LogHistogram,
    pub rtt: LogHistogram,
    pub end_to_end: LogHistogram,
    /// Queries assembled (sampled queries with at least one event).
    pub queries: u64,
    /// Answered queries (contributing to `rtt` / `end_to_end`).
    pub answered: u64,
    /// Abandoned queries.
    pub gave_up: u64,
    /// Extra wire segments across all queries (retransmits).
    pub retries: u64,
}

impl StageBreakdown {
    pub fn from_events(events: &[SpanEvent]) -> StageBreakdown {
        let mut b = StageBreakdown::default();
        for span in assemble(events) {
            b.queries += 1;
            b.retries += span.retries_us.len() as u64;
            if span.answered_us.is_some() {
                b.answered += 1;
            }
            if span.gave_up_us.is_some() {
                b.gave_up += 1;
            }
            if let Some(d) = span.batch_wait_us() {
                b.batch_wait.record(d);
            }
            if let Some(d) = span.queue_wait_us() {
                b.queue_wait.record(d);
            }
            if let Some(d) = span.send_lag_us() {
                b.send_lag.record(d);
            }
            if let Some(d) = span.rtt_us() {
                b.rtt.record(d);
            }
            if let Some(d) = span.end_to_end_us() {
                b.end_to_end.record(d);
            }
        }
        b
    }

    /// `(name, histogram)` pairs in manifest order.
    pub fn stages(&self) -> [(&'static str, &LogHistogram); 5] {
        [
            ("batch_wait", &self.batch_wait),
            ("queue_wait", &self.queue_wait),
            ("send_lag", &self.send_lag),
            ("rtt", &self.rtt),
            ("end_to_end", &self.end_to_end),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(shard: u32, seq: u64, stage: Stage, t_us: u64) -> SpanEvent {
        SpanEvent {
            shard,
            seq,
            stage,
            t_us,
        }
    }

    #[test]
    fn fault_free_span_telescopes() {
        let events = vec![
            ev(0, 0, Stage::Read, 100),
            ev(0, 0, Stage::Batched, 150),
            ev(0, 0, Stage::Scheduled, 175),
            ev(0, 0, Stage::Sent, 200),
            ev(0, 0, Stage::Answered, 450),
        ];
        let spans = assemble(&events);
        assert_eq!(spans.len(), 1);
        let s = &spans[0];
        assert_eq!(s.batch_wait_us(), Some(50));
        assert_eq!(s.queue_wait_us(), Some(25));
        assert_eq!(s.send_lag_us(), Some(25));
        assert_eq!(s.rtt_us(), Some(250));
        assert_eq!(s.end_to_end_us(), Some(350));
        let sum = s.batch_wait_us().unwrap()
            + s.queue_wait_us().unwrap()
            + s.send_lag_us().unwrap()
            + s.rtt_us().unwrap();
        assert_eq!(sum, s.end_to_end_us().unwrap());
        assert_eq!(s.wire_segments(), 1);
    }

    #[test]
    fn retries_become_wire_segments() {
        let events = vec![
            ev(0, 7, Stage::Sent, 100),
            ev(0, 7, Stage::Retry, 350),
            ev(0, 7, Stage::Retry, 850),
            ev(0, 7, Stage::Answered, 900),
        ];
        let spans = assemble(&events);
        assert_eq!(spans[0].wire_segments(), 3);
        let b = StageBreakdown::from_events(&events);
        assert_eq!(b.retries, 2);
        assert_eq!(b.answered, 1);
    }

    #[test]
    fn missing_stages_do_not_pollute_histograms() {
        // Sent but never answered (gave up): no rtt/e2e samples.
        let events = vec![
            ev(0, 1, Stage::Read, 10),
            ev(0, 1, Stage::Sent, 30),
            ev(0, 1, Stage::GaveUp, 500_000),
        ];
        let b = StageBreakdown::from_events(&events);
        assert_eq!(b.queries, 1);
        assert_eq!(b.gave_up, 1);
        assert!(b.rtt.is_empty());
        assert!(b.end_to_end.is_empty());
    }

    #[test]
    fn queries_on_different_shards_stay_separate() {
        let events = vec![
            ev(0, 4, Stage::Sent, 100),
            ev(1, 4, Stage::Sent, 200),
            ev(1, 4, Stage::Answered, 260),
        ];
        let spans = assemble(&events);
        assert_eq!(spans.len(), 2);
        assert_eq!(spans[0].answered_us, None);
        assert_eq!(spans[1].rtt_us(), Some(60));
    }
}
