//! Structured spans over the replay pipeline.
//!
//! Every query a replay sends walks the same pipeline: the Reader parses
//! it, the Postman batches and routes it, a Querier schedules and sends
//! it, and an answer (or a timeout sweep) closes it. A *span* is the set
//! of stage-transition events one query emits along that walk, keyed by
//! `(shard, seq)` where `seq` is the query's per-shard record ordinal —
//! the same index its latency slot uses, so spans join back to
//! `ReplayOutcome`s for free.
//!
//! Recording must not perturb what it measures. Each shard gets its own
//! fixed-capacity ring of atomic slots; a writer claims a slot with one
//! `fetch_add` and publishes with one release store — no locks, no
//! allocation, no syscalls on the hot path. Overwrite beats blocking:
//! when a ring wraps, the oldest events are lost and counted, never the
//! newest, and senders never stall. Readers drain at quiescence (after
//! the replay joins), which is the only time the data is wanted anyway.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Pipeline stages a query transitions through. The wire value (4 bits)
/// is part of the manifest schema — append, never renumber.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(u8)]
pub enum Stage {
    /// Reader parsed the record and handed it to the Postman.
    Read = 0,
    /// Postman flushed the batch containing it toward its querier.
    Batched = 1,
    /// Querier dequeued it and began pacing (timed) or blasting (fast).
    Scheduled = 2,
    /// First datagram / stream write for this query hit the socket.
    Sent = 3,
    /// Timeout sweeper retransmitted it (one event per extra datagram).
    Retry = 4,
    /// A matching answer came back.
    Answered = 5,
    /// Retry budget exhausted; the query was abandoned.
    GaveUp = 6,
}

impl Stage {
    pub const ALL: [Stage; 7] = [
        Stage::Read,
        Stage::Batched,
        Stage::Scheduled,
        Stage::Sent,
        Stage::Retry,
        Stage::Answered,
        Stage::GaveUp,
    ];

    pub fn name(self) -> &'static str {
        match self {
            Stage::Read => "read",
            Stage::Batched => "batched",
            Stage::Scheduled => "scheduled",
            Stage::Sent => "sent",
            Stage::Retry => "retry",
            Stage::Answered => "answered",
            Stage::GaveUp => "gave_up",
        }
    }

    fn from_wire(v: u64) -> Option<Stage> {
        Stage::ALL.get(v as usize).copied()
    }
}

/// One stage transition: query `(shard, seq)` reached `stage` at `t_us`
/// microseconds after the replay epoch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanEvent {
    pub shard: u32,
    pub seq: u64,
    pub stage: Stage,
    pub t_us: u64,
}

/// Slot word 0 layout: `seq << 4 | stage`. An empty slot holds
/// [`EMPTY`]; a seq of `u64::MAX >> 4` is unrepresentable (a replay
/// would need 10^18 queries on one shard first).
const EMPTY: u64 = u64::MAX;

/// Fixed-capacity multi-writer event ring for one shard.
///
/// Writers: `fetch_add` the cursor, store the timestamp word, then
/// release-store the packed `(seq, stage)` word, which publishes the
/// slot. Two writers lapping each other on the same slot (cursor wrapped
/// a whole ring between their claims) can interleave stores — the slot
/// then holds a mismatched pair. That needs `capacity` events recorded
/// between one writer's claim and its two stores; with capacities in the
/// tens of thousands it does not happen in practice, and the cost is one
/// wrong event in a diagnostic stream, not corruption.
#[derive(Debug)]
struct ShardRing {
    cursor: AtomicU64,
    slots: Vec<[AtomicU64; 2]>,
}

impl ShardRing {
    fn new(capacity: usize) -> ShardRing {
        ShardRing {
            cursor: AtomicU64::new(0),
            slots: (0..capacity.max(1))
                .map(|_| [AtomicU64::new(EMPTY), AtomicU64::new(0)])
                .collect(),
        }
    }

    fn record(&self, seq: u64, stage: Stage, t_us: u64) {
        let i = self.cursor.fetch_add(1, Ordering::Relaxed) as usize % self.slots.len();
        let slot = &self.slots[i];
        slot[1].store(t_us, Ordering::Relaxed);
        slot[0].store(seq << 4 | stage as u64, Ordering::Release);
    }

    /// Events recorded but overwritten by ring wrap-around.
    fn overwritten(&self) -> u64 {
        self.cursor
            .load(Ordering::Relaxed)
            .saturating_sub(self.slots.len() as u64)
    }

    fn drain_into(&self, shard: u32, out: &mut Vec<SpanEvent>) {
        for slot in &self.slots {
            let w0 = slot[0].load(Ordering::Acquire);
            if w0 == EMPTY {
                continue;
            }
            let Some(stage) = Stage::from_wire(w0 & 0xf) else {
                continue;
            };
            out.push(SpanEvent {
                shard,
                seq: w0 >> 4,
                stage,
                t_us: slot[1].load(Ordering::Relaxed),
            });
        }
    }
}

/// Default per-shard ring capacity for [`ReplaySpans::full`]: enough for
/// ~6k fault-free queries per shard (5 events each) in ~2.5 MB total on
/// a 6-querier replay.
const DEFAULT_CAPACITY: usize = 1 << 15;

/// Span sink for one replay: per-shard rings plus the sampling policy.
///
/// Sampling is by query, not by event — either every stage of a query is
/// recorded or none, so stage durations always pair up. `sample == 1`
/// records everything; `sample == n` records queries whose per-shard
/// ordinal is divisible by `n`.
#[derive(Debug)]
pub struct ReplaySpans {
    sample: u64,
    rings: Vec<ShardRing>,
}

impl ReplaySpans {
    /// Full tracing (every query) for `shards` queriers.
    pub fn full(shards: usize) -> ReplaySpans {
        ReplaySpans::with_capacity(shards, 1, DEFAULT_CAPACITY)
    }

    /// Explicit sampling rate and per-shard ring capacity.
    pub fn with_capacity(shards: usize, sample: u64, capacity: usize) -> ReplaySpans {
        ReplaySpans {
            sample: sample.max(1),
            rings: (0..shards.max(1))
                .map(|_| ShardRing::new(capacity))
                .collect(),
        }
    }

    /// Reads `LDP_OBS_SAMPLE`: unset, `0`, or `off` disables tracing
    /// (returns `None`); `1` traces every query; `n` traces every n-th
    /// query per shard. Unparseable values disable tracing.
    pub fn from_env(shards: usize) -> Option<Arc<ReplaySpans>> {
        let n = sample_from_env();
        (n > 0).then(|| Arc::new(ReplaySpans::with_capacity(shards, n, DEFAULT_CAPACITY)))
    }

    /// The sampling modulus (1 = every query).
    pub fn sample(&self) -> u64 {
        self.sample
    }

    pub fn shards(&self) -> usize {
        self.rings.len()
    }

    /// Whether query `seq` on any shard is traced under the sampling
    /// policy. Callers skip the record entirely for untraced queries.
    #[inline]
    pub fn sampled(&self, seq: u64) -> bool {
        self.sample == 1 || seq.is_multiple_of(self.sample)
    }

    /// Records a stage transition for query `(shard, seq)` at `t_us`
    /// microseconds after the replay epoch. Applies sampling internally.
    #[inline]
    pub fn record(&self, shard: usize, seq: u64, stage: Stage, t_us: u64) {
        if !self.sampled(seq) {
            return;
        }
        if let Some(ring) = self.rings.get(shard) {
            ring.record(seq, stage, t_us);
        }
    }

    /// Records the same stage at the same time for a contiguous seq range
    /// (the Postman stamps a whole flushed batch at once).
    pub fn record_range(&self, shard: usize, seqs: std::ops::Range<u64>, stage: Stage, t_us: u64) {
        for seq in seqs {
            self.record(shard, seq, stage, t_us);
        }
    }

    /// Total events lost to ring wrap-around across all shards.
    pub fn overwritten(&self) -> u64 {
        self.rings.iter().map(ShardRing::overwritten).sum()
    }

    /// Drains every ring into a single event list, ordered by
    /// `(shard, seq, stage, t_us)` for deterministic downstream grouping.
    /// Call only at quiescence (after the replay has joined).
    pub fn events(&self) -> Vec<SpanEvent> {
        let mut out = Vec::new();
        for (shard, ring) in self.rings.iter().enumerate() {
            ring.drain_into(shard as u32, &mut out);
        }
        out.sort_by_key(|e| (e.shard, e.seq, e.stage, e.t_us));
        out
    }
}

/// Parses `LDP_OBS_SAMPLE` into a sampling modulus (0 = disabled).
pub fn sample_from_env() -> u64 {
    match std::env::var("LDP_OBS_SAMPLE") {
        Ok(v) => {
            let v = v.trim();
            if v.is_empty() || v.eq_ignore_ascii_case("off") {
                0
            } else {
                v.parse().unwrap_or(0)
            }
        }
        Err(_) => 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stage_wire_roundtrip() {
        for s in Stage::ALL {
            assert_eq!(Stage::from_wire(s as u64), Some(s));
        }
        assert_eq!(Stage::from_wire(7), None);
    }

    #[test]
    fn records_and_drains_in_order() {
        let spans = ReplaySpans::full(2);
        spans.record(1, 5, Stage::Sent, 300);
        spans.record(0, 0, Stage::Read, 10);
        spans.record(0, 0, Stage::Sent, 20);
        spans.record(1, 5, Stage::Read, 100);
        let ev = spans.events();
        assert_eq!(ev.len(), 4);
        assert_eq!(
            ev.iter()
                .map(|e| (e.shard, e.seq, e.stage))
                .collect::<Vec<_>>(),
            vec![
                (0, 0, Stage::Read),
                (0, 0, Stage::Sent),
                (1, 5, Stage::Read),
                (1, 5, Stage::Sent),
            ]
        );
        assert_eq!(spans.overwritten(), 0);
    }

    #[test]
    fn sampling_keeps_whole_queries() {
        let spans = ReplaySpans::with_capacity(1, 3, 64);
        for seq in 0..9u64 {
            spans.record(0, seq, Stage::Read, seq);
            spans.record(0, seq, Stage::Sent, seq + 1);
        }
        let ev = spans.events();
        // seqs 0, 3, 6 survive — both events each.
        assert_eq!(ev.len(), 6);
        assert!(ev.iter().all(|e| e.seq % 3 == 0));
    }

    #[test]
    fn wraparound_counts_overwrites() {
        let spans = ReplaySpans::with_capacity(1, 1, 4);
        for seq in 0..10u64 {
            spans.record(0, seq, Stage::Read, seq);
        }
        assert_eq!(spans.overwritten(), 6);
        let ev = spans.events();
        assert_eq!(ev.len(), 4);
        // The newest events survive.
        assert!(ev.iter().all(|e| e.seq >= 6));
    }

    #[test]
    fn out_of_range_shard_is_ignored() {
        let spans = ReplaySpans::full(1);
        spans.record(9, 0, Stage::Read, 1);
        assert!(spans.events().is_empty());
    }

    #[test]
    fn env_knob_parses() {
        // Not set in the test environment by default.
        std::env::remove_var("LDP_OBS_SAMPLE");
        assert_eq!(sample_from_env(), 0);
        std::env::set_var("LDP_OBS_SAMPLE", "0");
        assert_eq!(sample_from_env(), 0);
        std::env::set_var("LDP_OBS_SAMPLE", "off");
        assert_eq!(sample_from_env(), 0);
        std::env::set_var("LDP_OBS_SAMPLE", "1");
        assert_eq!(sample_from_env(), 1);
        std::env::set_var("LDP_OBS_SAMPLE", "100");
        assert_eq!(sample_from_env(), 100);
        std::env::set_var("LDP_OBS_SAMPLE", "banana");
        assert_eq!(sample_from_env(), 0);
        std::env::remove_var("LDP_OBS_SAMPLE");
    }
}
