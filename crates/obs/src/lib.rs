//! `ldp-obs`: low-overhead observability for the replay pipeline.
//!
//! The paper's evaluation stands on accurate latency and throughput
//! attribution; this crate makes the replay's *internal* time visible so
//! those numbers can be trusted. Three pieces:
//!
//! * [`span`] — per-query stage-transition events (read → batched →
//!   scheduled → sent → answered / retry / gave-up) recorded into
//!   lock-free per-shard rings. Overhead is one atomic `fetch_add` plus
//!   two stores per event, and a sampling knob (`LDP_OBS_SAMPLE`) gates
//!   the whole thing off by default.
//! * [`breakdown`] — assembles drained events into per-query spans whose
//!   stage durations telescope to end-to-end latency exactly, and folds
//!   them into fixed-memory [`ldp_metrics::LogHistogram`]s per stage.
//! * [`manifest`] — [`RunManifest`], the timestamp-free JSON artifact
//!   every bench binary and the CLI emit: git rev, seed, scale, policies,
//!   per-stage histograms, fault counters. Deterministic by construction
//!   so CI can diff two runs byte-for-byte.
//!
//! Dependency-light on purpose: `ldp-metrics` and the vendored serde
//! stubs only, so every layer of the pipeline can use it without cycles.

#![deny(rust_2018_idioms, unsafe_op_in_unsafe_fn, unreachable_pub)]

pub mod breakdown;
pub mod manifest;
pub mod span;

pub use breakdown::{assemble, QuerySpan, StageBreakdown};
pub use manifest::{git_rev, RunManifest, SCHEMA};
pub use span::{sample_from_env, ReplaySpans, SpanEvent, Stage};
