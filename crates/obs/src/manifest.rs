//! Run manifests: one JSON artifact per experiment run that pins down
//! *what ran* (git rev, seed, scale, retry/chaos policies) and *what
//! happened* (per-stage latency histograms, fault counters, throughput
//! series) in a schema stable enough to diff across commits.
//!
//! Manifests are deliberately **timestamp-free**: two runs of the same
//! binary at the same seed on the same tree must produce byte-identical
//! manifests, which is what lets CI double-run the suite and diff the
//! artifacts to catch nondeterminism. Anything wall-clock-dependent
//! (actual throughput, RSS) belongs in `BENCH_*.json` records, not here —
//! except where a bench explicitly opts in via [`RunManifest::extra`].

use std::io;
use std::path::{Path, PathBuf};

use ldp_metrics::LogHistogram;
use serde::{Serialize, Value};
use serde_json::json;

use crate::breakdown::StageBreakdown;

/// Manifest schema identifier; bump only with a migration note in
/// DESIGN.md §9. v2 added the `timeseries` section (sampled metric
/// rings, tick-indexed so manifests stay byte-deterministic).
pub const SCHEMA: &str = "ldp.run-manifest/v2";

/// A run manifest under construction. Field order in the emitted JSON is
/// fixed (schema, name, git_rev, seed, scale, obs_sample, retry, chaos,
/// stages, faults, throughput_qps, timeseries, extra) — golden tests pin
/// it.
#[derive(Debug, Clone)]
pub struct RunManifest {
    pub name: String,
    pub git_rev: String,
    pub seed: Option<u64>,
    pub scale: Option<f64>,
    pub obs_sample: u64,
    retry: Option<Value>,
    chaos: Option<Value>,
    stages: Vec<(String, Value)>,
    faults: Option<Value>,
    throughput_qps: Vec<f64>,
    timeseries: Option<Value>,
    extra: Vec<(String, Value)>,
}

impl RunManifest {
    pub fn new(name: impl Into<String>) -> RunManifest {
        RunManifest {
            name: name.into(),
            git_rev: git_rev(),
            seed: None,
            scale: None,
            obs_sample: crate::span::sample_from_env(),
            retry: None,
            chaos: None,
            stages: Vec::new(),
            faults: None,
            throughput_qps: Vec::new(),
            timeseries: None,
            extra: Vec::new(),
        }
    }

    pub fn seed(mut self, seed: u64) -> RunManifest {
        self.seed = Some(seed);
        self
    }

    pub fn scale(mut self, scale: f64) -> RunManifest {
        self.scale = Some(scale);
        self
    }

    pub fn retry_policy(mut self, policy: Value) -> RunManifest {
        self.retry = Some(policy);
        self
    }

    pub fn chaos_policy(mut self, policy: Value) -> RunManifest {
        self.chaos = Some(policy);
        self
    }

    /// Adds one named stage histogram (µs ticks). The JSON entry carries
    /// the raw sparse histogram plus a millisecond summary for humans.
    pub fn stage(mut self, name: &str, hist: &LogHistogram) -> RunManifest {
        let summary = hist.summary(1000.0).map(|s| s.to_json_value());
        self.stages.push((
            name.to_string(),
            json!({
                "unit": "us",
                "histogram": hist,
                "summary_ms": summary,
            }),
        ));
        self
    }

    /// Adds every stage of a [`StageBreakdown`] plus its span counters.
    pub fn stage_breakdown(mut self, b: &StageBreakdown) -> RunManifest {
        for (name, hist) in b.stages() {
            self = self.stage(name, hist);
        }
        self.extra.push((
            "span_counts".to_string(),
            json!({
                "queries": b.queries,
                "answered": b.answered,
                "gave_up": b.gave_up,
                "retries": b.retries,
            }),
        ));
        self
    }

    /// Fault counters (typically a serialized `PipelineTotals`).
    pub fn faults(mut self, faults: Value) -> RunManifest {
        self.faults = Some(faults);
        self
    }

    /// Per-window throughput series (q/s). Wall-clock-derived: include
    /// only in bench manifests, never in determinism-diffed ones.
    pub fn throughput(mut self, qps: Vec<f64>) -> RunManifest {
        self.throughput_qps = qps;
        self
    }

    /// Sampled time-series section (schema v2): the value produced by a
    /// telemetry sampler's manifest rendering — tick-indexed points, so
    /// a fixed-seed run emits identical bytes. Wall-clock stamps would
    /// break the determinism diff; samplers must index by tick.
    pub fn timeseries(mut self, series: Value) -> RunManifest {
        self.timeseries = Some(series);
        self
    }

    /// Free-form extension field (appears under `"extra"`, insertion
    /// order preserved).
    pub fn extra(mut self, key: &str, value: Value) -> RunManifest {
        self.extra.push((key.to_string(), value));
        self
    }

    /// Writes `<stem>.manifest.json` under `dir`, creating it if needed.
    pub fn write(&self, dir: &Path, stem: &str) -> io::Result<PathBuf> {
        let path = dir.join(format!("{stem}.manifest.json"));
        std::fs::create_dir_all(dir)?;
        let body = serde_json::to_string_pretty(&self.to_json_value())
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
        std::fs::write(&path, body)?;
        Ok(path)
    }
}

impl Serialize for RunManifest {
    fn to_json_value(&self) -> Value {
        let stages = Value::Object(self.stages.clone());
        let extra = Value::Object(self.extra.clone());
        json!({
            "schema": SCHEMA,
            "name": self.name,
            "git_rev": self.git_rev,
            "seed": self.seed,
            "scale": self.scale,
            "obs_sample": self.obs_sample,
            "retry": self.retry,
            "chaos": self.chaos,
            "stages": stages,
            "faults": self.faults,
            "throughput_qps": self.throughput_qps,
            "timeseries": self.timeseries,
            "extra": extra,
        })
    }
}

/// The current git revision: `LDP_GIT_REV` if set (CI provides it),
/// otherwise read from `.git/HEAD` (following one level of symbolic
/// ref), searching upward from the current directory. Falls back to
/// `"unknown"` — a manifest must never fail over provenance.
pub fn git_rev() -> String {
    if let Ok(rev) = std::env::var("LDP_GIT_REV") {
        let rev = rev.trim().to_string();
        if !rev.is_empty() {
            return rev;
        }
    }
    let mut dir = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
    loop {
        let git = dir.join(".git");
        if git.is_dir() {
            return rev_from_git_dir(&git).unwrap_or_else(|| "unknown".to_string());
        }
        if !dir.pop() {
            return "unknown".to_string();
        }
    }
}

fn rev_from_git_dir(git: &Path) -> Option<String> {
    let head = std::fs::read_to_string(git.join("HEAD")).ok()?;
    let head = head.trim();
    if let Some(refname) = head.strip_prefix("ref: ") {
        let direct = std::fs::read_to_string(git.join(refname))
            .ok()
            .map(|s| s.trim().to_string())
            .filter(|s| !s.is_empty());
        if direct.is_some() {
            return direct;
        }
        // Ref may be packed.
        let packed = std::fs::read_to_string(git.join("packed-refs")).ok()?;
        for line in packed.lines() {
            if let Some(rev) = line.strip_suffix(refname) {
                let rev = rev.trim();
                if !rev.is_empty() && !rev.starts_with('#') {
                    return Some(rev.to_string());
                }
            }
        }
        None
    } else if head.is_empty() {
        None
    } else {
        Some(head.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn manifest_key_order_is_fixed() {
        let m = RunManifest::new("t").seed(42).scale(1.0);
        let v = m.to_json_value();
        let Value::Object(fields) = &v else {
            panic!("manifest must serialize to an object");
        };
        let keys: Vec<&str> = fields.iter().map(|(k, _)| k.as_str()).collect();
        assert_eq!(
            keys,
            [
                "schema",
                "name",
                "git_rev",
                "seed",
                "scale",
                "obs_sample",
                "retry",
                "chaos",
                "stages",
                "faults",
                "throughput_qps",
                "timeseries",
                "extra",
            ]
        );
    }

    #[test]
    fn same_inputs_serialize_identically() {
        let build = || {
            let mut h = LogHistogram::new();
            h.record_n(500, 20);
            h.record(90_000);
            RunManifest::new("det")
                .seed(7)
                .scale(0.3)
                .stage("rtt", &h)
                .extra("k", json!(1))
        };
        let a = serde_json::to_string_pretty(&build().to_json_value()).expect("serializes");
        let b = serde_json::to_string_pretty(&build().to_json_value()).expect("serializes");
        assert_eq!(a, b);
    }

    #[test]
    fn git_rev_env_override_wins() {
        std::env::set_var("LDP_GIT_REV", "deadbeef");
        assert_eq!(git_rev(), "deadbeef");
        std::env::remove_var("LDP_GIT_REV");
    }

    #[test]
    fn writes_manifest_file() {
        let dir = std::env::temp_dir().join(format!("ldp-obs-manifest-{}", std::process::id()));
        let path = RunManifest::new("smoke").write(&dir, "smoke").unwrap();
        let body = std::fs::read_to_string(&path).unwrap();
        assert!(body.contains("\"schema\": \"ldp.run-manifest/v2\""));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
