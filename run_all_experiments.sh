#!/bin/sh
# Regenerates every table/figure of the paper into ./results/.
# LDP_SCALE trades runtime for statistical weight (see README).
set -x
SCALE_LIVE=${SCALE_LIVE:-1.0}
SCALE_SIM=${SCALE_SIM:-0.3}
LDP_SCALE=$SCALE_LIVE cargo run --release -q -p ldp-bench --bin table1
LDP_SCALE=$SCALE_LIVE cargo run --release -q -p ldp-bench --bin fig06_timing_error
LDP_SCALE=$SCALE_LIVE cargo run --release -q -p ldp-bench --bin fig07_interarrival_cdf
LDP_SCALE=$SCALE_LIVE cargo run --release -q -p ldp-bench --bin fig08_rate_diff
LDP_SCALE=$SCALE_LIVE cargo run --release -q -p ldp-bench --bin fig09_throughput
LDP_SCALE=$SCALE_SIM cargo run --release -q -p ldp-bench --bin fig10_dnssec_bandwidth
LDP_SCALE=$SCALE_SIM cargo run --release -q -p ldp-bench --bin fig11_cpu
LDP_SCALE=$SCALE_SIM cargo run --release -q -p ldp-bench --bin fig13_tcp_footprint
LDP_SCALE=$SCALE_SIM cargo run --release -q -p ldp-bench --bin fig14_tls_footprint
LDP_SCALE=$SCALE_SIM cargo run --release -q -p ldp-bench --bin fig15_latency
LDP_SCALE=$SCALE_SIM cargo run --release -q -p ldp-bench --bin ablation_nagle
LDP_SCALE=$SCALE_SIM cargo run --release -q -p ldp-bench --bin ext_dos_load
LDP_SCALE=$SCALE_SIM cargo run --release -q -p ldp-bench --bin ext_recursive_replay
LDP_SCALE=$SCALE_SIM cargo run --release -q -p ldp-bench --bin ext_quic
